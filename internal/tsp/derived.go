package tsp

import (
	"errors"
	"fmt"
)

// MaxExactDistF32 is the largest integer distance float32 represents
// exactly. Above 2^24 the float32 mantissa runs out of bits and distinct
// int32 distances collapse onto the same float32 value: the conversion is
// still monotonic (no single edge compares out of order), but edges stop
// being distinguishable and float32 tour-length accumulation can rank two
// tours in the wrong order. Large-coordinate ATT/EUC_2D instances (MaxCoord
// is 1e8) can legitimately exceed this limit.
const MaxExactDistF32 = 1 << 24

// ErrF32Precision reports that an instance's distance matrix contains
// entries above MaxExactDistF32, so the float32 data path the device
// kernels consume would silently lose precision. Callers should fall back
// to the float64 CPU colony (BackendCPU) for such instances.
var ErrF32Precision = errors.New("distance exceeds exact float32 range (2^24)")

// Derived holds the read-only data every solver derives from an instance
// before its first iteration: the distance matrix converted to the float32
// the device kernels consume, the nearest-neighbour lists, and the greedy
// nearest-neighbour tour length C^nn that sets the initial pheromone level.
// Computing it is the Θ(n² log n) fixed cost of starting a solve; a batch
// of solves over the same instance shares one Derived (see internal/sched).
//
// A Derived is immutable after ComputeDerived returns and safe to share
// across concurrent solves; consumers must treat the slices as read-only
// and copy them before mutating (the GPU engines copy them into private
// device buffers anyway).
type Derived struct {
	N  int // number of cities
	NN int // effective nearest-neighbour list width (clamped to n-1)

	// List is the row-major N x NN nearest-neighbour list (Instance.NNList).
	List []int32
	// DistF32 is the N*N distance matrix converted to float32, the form the
	// simulated device kernels upload.
	DistF32 []float32
	// CNN is the length of the greedy nearest-neighbour tour from city 0,
	// used for τ0 = m / C^nn (and the variants' τ0 formulas).
	CNN int64
}

// EffectiveNN clamps a requested nearest-neighbour list width to the
// instance's maximum (n-1), the same clamp every colony and engine applies.
func (in *Instance) EffectiveNN(nn int) int {
	if nn > in.n-1 {
		return in.n - 1
	}
	return nn
}

// CheckDistF32 reports whether the instance's distances all convert to
// float32 exactly, returning an error wrapping ErrF32Precision naming the
// first offending edge otherwise. Engines that upload int32 distances into
// float32 device buffers call this before converting.
func (in *Instance) CheckDistF32() error {
	n := in.n
	for i, v := range in.matrix {
		if v > MaxExactDistF32 {
			return fmt.Errorf("tsp: instance %q: d(%d,%d) = %d: %w",
				in.Name, i/n, i%n, v, ErrF32Precision)
		}
	}
	return nil
}

// ComputeDerived computes the shared derived data for the instance at the
// given nearest-neighbour width. The result depends only on the instance
// content and nn, so two instances with equal ContentHash produce
// byte-identical Derived values.
//
// Distances above MaxExactDistF32 cannot be converted to DistF32 without
// losing precision; ComputeDerived detects them during conversion and
// returns an error wrapping ErrF32Precision instead of silently collapsing
// edges (such instances remain solvable by the float64 CPU colony, which
// does not consume Derived.DistF32).
func (in *Instance) ComputeDerived(nn int) (*Derived, error) {
	n := in.n
	nn = in.EffectiveNN(nn)
	d := &Derived{N: n, NN: nn}
	d.List = in.NNList(nn)
	d.DistF32 = make([]float32, n*n)
	for i, v := range in.matrix {
		if v > MaxExactDistF32 {
			return nil, fmt.Errorf("tsp: instance %q: d(%d,%d) = %d: %w",
				in.Name, i/n, i%n, v, ErrF32Precision)
		}
		d.DistF32[i] = float32(v)
	}
	d.CNN = in.TourLength(in.NearestNeighbourTour(0))
	return d, nil
}

// ContentHash returns a 64-bit FNV-1a hash of the instance's solver-visible
// content: the edge weight type, the dimension and the full distance
// matrix. Two instances with equal hashes are (up to 64-bit collisions,
// which the derived-data cache tolerates by construction — equal content is
// what it needs, and unequal content with equal hashes only means sharing
// is keyed conservatively by the caller) interchangeable for solving: the
// name, comment and raw coordinates do not affect tours or lengths beyond
// the matrix they produced.
func (in *Instance) ContentHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	word32 := func(v uint32) {
		byte1(byte(v))
		byte1(byte(v >> 8))
		byte1(byte(v >> 16))
		byte1(byte(v >> 24))
	}
	for i := 0; i < len(in.Type); i++ {
		byte1(in.Type[i])
	}
	word32(uint32(in.n))
	for _, v := range in.matrix {
		word32(uint32(v))
	}
	return h
}
