package tsp_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"antgpu/internal/tsp"
)

func square(t *testing.T) *tsp.Instance {
	t.Helper()
	in, err := tsp.New("square", tsp.Euc2D, []tsp.Point{
		{X: 0, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}, {X: 10, Y: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEuc2DDistances(t *testing.T) {
	in := square(t)
	if d := in.Dist(0, 1); d != 10 {
		t.Errorf("Dist(0,1) = %d, want 10", d)
	}
	if d := in.Dist(0, 2); d != 14 { // sqrt(200) = 14.14 rounds to 14
		t.Errorf("Dist(0,2) = %d, want 14", d)
	}
	if d := in.Dist(2, 0); d != in.Dist(0, 2) {
		t.Error("matrix not symmetric")
	}
	if d := in.Dist(3, 3); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestCeil2D(t *testing.T) {
	a, b := tsp.Point{X: 0, Y: 0}, tsp.Point{X: 10, Y: 10}
	if d := tsp.DistCeil2D(a, b); d != 15 { // ceil(14.14)
		t.Errorf("DistCeil2D = %d, want 15", d)
	}
}

func TestAttDistanceKnownValue(t *testing.T) {
	// ATT: rij = sqrt((dx^2+dy^2)/10); tij = round(rij); if tij < rij -> +1.
	a, b := tsp.Point{X: 0, Y: 0}, tsp.Point{X: 10, Y: 0}
	// r = sqrt(100/10) = sqrt(10) = 3.162..., t = 3 < r -> 4.
	if d := tsp.DistAtt(a, b); d != 4 {
		t.Errorf("DistAtt = %d, want 4", d)
	}
}

func TestGeoDistancePositiveAndSymmetric(t *testing.T) {
	a := tsp.Point{X: 38.24, Y: 20.42} // TSPLIB ulysses-style DDD.MM
	b := tsp.Point{X: 39.57, Y: 26.15}
	d1, d2 := tsp.DistGeo(a, b), tsp.DistGeo(b, a)
	if d1 <= 0 || d1 != d2 {
		t.Errorf("DistGeo = %d / %d", d1, d2)
	}
}

func TestTourLengthSquare(t *testing.T) {
	in := square(t)
	if l := in.TourLength([]int32{0, 1, 2, 3}); l != 40 {
		t.Errorf("perimeter tour length = %d, want 40", l)
	}
	if l := in.TourLength([]int32{0, 2, 1, 3}); l != 48 { // two diagonals (14 each) + two sides
		t.Errorf("crossing tour length = %d, want 48", l)
	}
}

func TestValidTour(t *testing.T) {
	in := square(t)
	if err := in.ValidTour([]int32{0, 1, 2, 3}); err != nil {
		t.Errorf("valid tour rejected: %v", err)
	}
	if err := in.ValidTour([]int32{0, 1, 2}); err == nil {
		t.Error("short tour accepted")
	}
	if err := in.ValidTour([]int32{0, 1, 2, 2}); err == nil {
		t.Error("duplicate city accepted")
	}
	if err := in.ValidTour([]int32{0, 1, 2, 7}); err == nil {
		t.Error("out-of-range city accepted")
	}
}

func TestNewRejectsTinyInstances(t *testing.T) {
	if _, err := tsp.New("tiny", tsp.Euc2D, []tsp.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}); err == nil {
		t.Error("2-city instance accepted")
	}
}

func TestNNListOrderedAndFeasible(t *testing.T) {
	in := tsp.MustLoadBenchmark("att48")
	const nn = 10
	list := in.NNList(nn)
	if len(list) != in.N()*nn {
		t.Fatalf("NNList size = %d, want %d", len(list), in.N()*nn)
	}
	for i := 0; i < in.N(); i++ {
		prev := int32(-1)
		seen := map[int32]bool{int32(i): true}
		for k := 0; k < nn; k++ {
			j := list[i*nn+k]
			if seen[j] {
				t.Fatalf("city %d NN list repeats %d", i, j)
			}
			seen[j] = true
			d := in.Dist(i, int(j))
			if prev >= 0 && d < prev {
				t.Fatalf("city %d NN list not sorted at position %d", i, k)
			}
			prev = d
		}
		// The k-th neighbour must be at least as close as any city not in
		// the list.
		worst := in.Dist(i, int(list[i*nn+nn-1]))
		for j := 0; j < in.N(); j++ {
			if j == i || seen[int32(j)] {
				continue
			}
			if in.Dist(i, j) < worst {
				t.Fatalf("city %d: non-listed city %d closer than worst listed", i, j)
			}
		}
	}
}

func TestNNListClampsToNMinus1(t *testing.T) {
	in := square(t)
	list := in.NNList(50)
	if len(list) != 4*3 {
		t.Errorf("clamped NN list size = %d, want 12", len(list))
	}
}

func TestNearestNeighbourTourValid(t *testing.T) {
	in := tsp.MustLoadBenchmark("kroC100")
	tour := in.NearestNeighbourTour(0)
	if err := in.ValidTour(tour); err != nil {
		t.Fatalf("NN tour invalid: %v", err)
	}
	if tour[0] != 0 {
		t.Errorf("NN tour starts at %d, want 0", tour[0])
	}
}

// PROPERTY: every generated instance has a symmetric, zero-diagonal,
// non-negative matrix, and the NN tour is always valid.
func TestGenerateInstanceInvariantsProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8, clustered bool) bool {
		n := int(rawN)%60 + 5
		clusters := 0
		if clustered {
			clusters = 3
		}
		in, err := tsp.Generate(tsp.GenSpec{
			Name: "prop", N: n, Type: tsp.Euc2D, Seed: seed, Width: 1000, Clusters: clusters,
		})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if in.Dist(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if in.Dist(i, j) != in.Dist(j, i) || in.Dist(i, j) < 0 {
					return false
				}
			}
		}
		return in.ValidTour(in.NearestNeighbourTour(0)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := tsp.GenSpec{Name: "d", N: 50, Type: tsp.Euc2D, Seed: 7, Clusters: 4}
	a, err := tsp.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tsp.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("coordinate %d differs between identical specs", i)
		}
	}
}

func TestPaperBenchmarkSizes(t *testing.T) {
	want := map[string]int{
		"att48": 48, "kroC100": 100, "a280": 280, "pcb442": 442,
		"d657": 657, "pr1002": 1002, "pr2392": 2392,
	}
	for _, name := range tsp.PaperBenchmarks {
		in, err := tsp.LoadBenchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if in.N() != want[name] {
			t.Errorf("%s has %d cities, want %d", name, in.N(), want[name])
		}
		if name == "att48" && in.Type != tsp.Att {
			t.Error("att48 must use ATT distances")
		}
	}
	if _, err := tsp.LoadBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestParseNodeCoordInstance(t *testing.T) {
	src := `NAME : demo
TYPE : TSP
COMMENT : four cities
DIMENSION : 4
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0 0
2 0 10
3 10 10
4 10 0
EOF
`
	in, err := tsp.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "demo" || in.N() != 4 || in.Comment != "four cities" {
		t.Errorf("parsed %q n=%d comment=%q", in.Name, in.N(), in.Comment)
	}
	if in.Dist(0, 1) != 10 {
		t.Errorf("Dist(0,1) = %d", in.Dist(0, 1))
	}
}

func TestParseExplicitUpperRow(t *testing.T) {
	src := `NAME: ex
TYPE: TSP
DIMENSION: 4
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: UPPER_ROW
EDGE_WEIGHT_SECTION
1 2 3
4 5
6
EOF
`
	in, err := tsp.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Dist(0, 1) != 1 || in.Dist(0, 3) != 3 || in.Dist(2, 3) != 6 {
		t.Errorf("explicit distances wrong: %d %d %d", in.Dist(0, 1), in.Dist(0, 3), in.Dist(2, 3))
	}
	if in.Dist(3, 2) != in.Dist(2, 3) {
		t.Error("explicit matrix not symmetrised")
	}
}

func TestParseExplicitFullMatrix(t *testing.T) {
	src := `DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 5 9
5 0 7
9 7 0
EOF
`
	in, err := tsp.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Dist(0, 2) != 9 || in.Dist(1, 2) != 7 {
		t.Error("full matrix distances wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing dimension": "NAME: x\nEOF\n",
		"coords before dim": "NODE_COORD_SECTION\n1 0 0\nEOF\n",
		"bad dimension":     "DIMENSION: zero\nEOF\n",
		"too few coords":    "DIMENSION: 4\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\nEOF\n",
		"bad weight count":  "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n1\nEOF\n",
		"bad type":          "TYPE: SOP\nDIMENSION: 3\nEOF\n",
	}
	for name, src := range cases {
		if _, err := tsp.Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteParseRoundTripCoords(t *testing.T) {
	orig := tsp.MustLoadBenchmark("att48")
	var buf bytes.Buffer
	if err := tsp.Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := tsp.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.Name != orig.Name || back.Type != orig.Type {
		t.Fatalf("roundtrip changed identity: %s %d %s", back.Name, back.N(), back.Type)
	}
	for i := 0; i < orig.N(); i++ {
		for j := 0; j < orig.N(); j++ {
			if orig.Dist(i, j) != back.Dist(i, j) {
				t.Fatalf("Dist(%d,%d) changed: %d -> %d", i, j, orig.Dist(i, j), back.Dist(i, j))
			}
		}
	}
}

func TestWriteParseRoundTripExplicit(t *testing.T) {
	orig, err := tsp.NewExplicit("ex", 4, []int32{
		0, 1, 2, 3,
		1, 0, 4, 5,
		2, 4, 0, 6,
		3, 5, 6, 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tsp.Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := tsp.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if orig.Dist(i, j) != back.Dist(i, j) {
				t.Fatalf("Dist(%d,%d): %d -> %d", i, j, orig.Dist(i, j), back.Dist(i, j))
			}
		}
	}
}

// PROPERTY: Write/Parse round-trips arbitrary generated instances.
func TestWriteParseRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		in, err := tsp.Generate(tsp.GenSpec{Name: "rt", N: 20, Type: tsp.Euc2D, Seed: seed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if tsp.Write(&buf, in) != nil {
			return false
		}
		back, err := tsp.Parse(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < in.N(); i++ {
			for j := 0; j < in.N(); j++ {
				if in.Dist(i, j) != back.Dist(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNewExplicitValidation(t *testing.T) {
	if _, err := tsp.NewExplicit("bad", 4, []int32{1, 2, 3}); err == nil {
		t.Error("wrong-size matrix accepted")
	}
	if _, err := tsp.NewExplicit("bad", 2, []int32{0, 1, 1, 0}); err == nil {
		t.Error("tiny instance accepted")
	}
}
