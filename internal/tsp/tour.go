package tsp

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseTour reads a TSPLIB TOUR file (the .tour / .opt.tour format): a
// specification part, a TOUR_SECTION of 1-based city numbers, terminated
// by -1. City numbers are converted to this package's 0-based indices.
func ParseTour(r io.Reader) ([]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var tour []int32
	dim := 0
	inSection := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		if upper == "EOF" {
			break
		}
		if inSection {
			terminated := false
			for _, tok := range strings.Fields(line) {
				v, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("tsp: bad tour entry %q", tok)
				}
				if v == -1 {
					terminated = true
					break
				}
				if v < 1 {
					return nil, fmt.Errorf("tsp: tour entry %d out of range (1-based)", v)
				}
				tour = append(tour, int32(v-1))
			}
			if terminated {
				inSection = false
			}
			continue
		}
		key, val := splitSpec(line)
		switch key {
		case "DIMENSION":
			d, err := strconv.Atoi(val)
			if err != nil || d < 1 {
				return nil, fmt.Errorf("tsp: bad DIMENSION %q", val)
			}
			dim = d
		case "TYPE":
			if v := strings.ToUpper(val); v != "TOUR" && v != "" {
				return nil, fmt.Errorf("tsp: not a TOUR file (TYPE %q)", val)
			}
		case "TOUR_SECTION":
			inSection = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsp: read: %w", err)
	}
	if len(tour) == 0 {
		return nil, fmt.Errorf("tsp: no TOUR_SECTION entries")
	}
	if dim != 0 && len(tour) != dim {
		return nil, fmt.Errorf("tsp: tour has %d cities, DIMENSION says %d", len(tour), dim)
	}
	return tour, nil
}

// ParseTourFile reads a TSPLIB TOUR file from disk.
func ParseTourFile(path string) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTour(f)
}

// WriteTour emits a tour in TSPLIB TOUR format (1-based city numbers,
// -1 terminator).
func WriteTour(w io.Writer, name string, tour []int32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "NAME : %s\n", name)
	fmt.Fprintf(bw, "TYPE : TOUR\n")
	fmt.Fprintf(bw, "DIMENSION : %d\n", len(tour))
	fmt.Fprintf(bw, "TOUR_SECTION\n")
	for _, c := range tour {
		fmt.Fprintf(bw, "%d\n", c+1)
	}
	fmt.Fprintln(bw, "-1")
	fmt.Fprintln(bw, "EOF")
	return bw.Flush()
}
