package tsp

import (
	"fmt"

	"antgpu/internal/rng"
)

// GenSpec describes a synthetic instance to generate.
type GenSpec struct {
	Name     string
	N        int
	Type     EdgeWeightType // coordinate-based types only
	Seed     uint64
	Width    float64 // coordinate range; default 10000
	Height   float64 // default Width
	Clusters int     // 0 = uniform points; otherwise Gaussian-ish clusters
}

// Generate builds a deterministic synthetic instance from a spec. The same
// spec always yields the same instance. Points are drawn either uniformly or
// from a mixture of square clusters, which mimics the structure of drilled-
// board TSPLIB instances well enough for performance work (everything the
// reproduced paper measures depends on instance size, not on the optimal
// tour).
func Generate(spec GenSpec) (*Instance, error) {
	if spec.N < 3 {
		return nil, fmt.Errorf("tsp: generate %q: n = %d too small", spec.Name, spec.N)
	}
	if spec.Type == Explicit {
		return nil, fmt.Errorf("tsp: generate %q: Explicit is not coordinate-based", spec.Name)
	}
	w := spec.Width
	if w <= 0 {
		w = 10000
	}
	h := spec.Height
	if h <= 0 {
		h = w
	}
	g := rng.Seed(spec.Seed, 0xace)
	coords := make([]Point, spec.N)

	if spec.Clusters <= 0 {
		for i := range coords {
			coords[i] = Point{X: g.Float64() * w, Y: g.Float64() * h}
		}
	} else {
		centers := make([]Point, spec.Clusters)
		for i := range centers {
			centers[i] = Point{X: g.Float64() * w, Y: g.Float64() * h}
		}
		spread := w / float64(spec.Clusters)
		for i := range coords {
			c := centers[g.Intn(spec.Clusters)]
			// Sum of three uniforms approximates a Gaussian cheaply and
			// deterministically.
			dx := (g.Float64() + g.Float64() + g.Float64() - 1.5) * spread
			dy := (g.Float64() + g.Float64() + g.Float64() - 1.5) * spread
			coords[i] = Point{X: clamp(c.X+dx, 0, w), Y: clamp(c.Y+dy, 0, h)}
		}
	}
	in, err := New(spec.Name, spec.Type, coords)
	if err != nil {
		return nil, err
	}
	in.Comment = fmt.Sprintf("synthetic instance (seed %d)", spec.Seed)
	return in, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PaperBenchmarks lists the TSPLIB instances of the paper's evaluation in
// ascending size order.
var PaperBenchmarks = []string{
	"att48", "kroC100", "a280", "pcb442", "d657", "pr1002", "pr2392",
}

// paperSpecs defines deterministic synthetic stand-ins for the paper's
// TSPLIB instances: same name, same size, same distance function, and a
// point distribution of the same flavour (clustered for the drilling and
// circuit-board instances, spread-out for the rest). The real TSPLIB files
// are proprietary-free but not embeddable here; any of them can be used
// instead via ParseFile, and everything measured depends only on n.
var paperSpecs = map[string]GenSpec{
	"att48":   {Name: "att48", N: 48, Type: Att, Seed: 48, Width: 10000},
	"kroC100": {Name: "kroC100", N: 100, Type: Euc2D, Seed: 100, Width: 4000},
	"a280":    {Name: "a280", N: 280, Type: Euc2D, Seed: 280, Width: 300, Clusters: 6},
	"pcb442":  {Name: "pcb442", N: 442, Type: Euc2D, Seed: 442, Width: 4000, Clusters: 12},
	"d657":    {Name: "d657", N: 657, Type: Euc2D, Seed: 657, Width: 4000, Clusters: 9},
	"pr1002":  {Name: "pr1002", N: 1002, Type: Euc2D, Seed: 1002, Width: 16000},
	"pr2392":  {Name: "pr2392", N: 2392, Type: Euc2D, Seed: 2392, Width: 16000, Clusters: 24},
}

// LoadBenchmark returns the named paper benchmark instance (synthetic
// stand-in, deterministic). Unknown names are an error.
func LoadBenchmark(name string) (*Instance, error) {
	spec, ok := paperSpecs[name]
	if !ok {
		return nil, fmt.Errorf("tsp: unknown benchmark %q (have %v)", name, PaperBenchmarks)
	}
	return Generate(spec)
}

// MustLoadBenchmark is LoadBenchmark for known-good names; it panics on
// error.
func MustLoadBenchmark(name string) *Instance {
	in, err := LoadBenchmark(name)
	if err != nil {
		panic(err)
	}
	return in
}
