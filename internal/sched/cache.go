package sched

import (
	"sync"
	"sync/atomic"

	"antgpu/internal/tsp"
)

// cacheKey identifies one derived-data value: the instance content hash
// (tsp.Instance.ContentHash — name and comment excluded, so two loads of
// the same file share) and the effective NN list width.
type cacheKey struct {
	hash uint64
	nn   int
}

// cacheEntry computes its Derived exactly once; concurrent requesters for
// the same key block on the sync.Once and then share the result.
type cacheEntry struct {
	once sync.Once
	d    *tsp.Derived
}

// Cache memoizes instance-derived read-only data across solves. It is safe
// for concurrent use: the first request for a (content hash, nn) key
// computes the data (a miss), every later or concurrent request shares it
// (a hit). Values are retained for the cache's lifetime — a pool serving a
// bounded instance set holds one entry per distinct instance/nn pair, Θ(n²)
// bytes each, the same footprint one solve of that instance needs anyway.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewCache returns an empty derived-data cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Derived returns the shared derived data of the instance at NN width nn,
// computing it on first use. The result is shared across callers and must
// be treated as read-only. A nil cache computes fresh data every call
// (counting nothing), so call sites need no nil checks.
func (c *Cache) Derived(in *tsp.Instance, nn int) *tsp.Derived {
	nn = in.EffectiveNN(nn)
	if c == nil {
		return in.ComputeDerived(nn)
	}
	k := cacheKey{hash: in.ContentHash(), nn: nn}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &cacheEntry{}
		c.entries[k] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() { e.d = in.ComputeDerived(nn) })
	return e.d
}

// Stats returns the cumulative hit and miss counts. A hit is any Derived
// call that found the key already present (including calls that waited on
// an in-flight computation); a miss is a call that had to compute.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct derived-data entries resident.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
