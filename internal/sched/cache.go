package sched

import (
	"sync"
	"sync/atomic"

	"antgpu/internal/tsp"
)

// cacheKey identifies one derived-data value: the instance content hash
// (tsp.Instance.ContentHash — name and comment excluded, so two loads of
// the same file share) and the effective NN list width.
type cacheKey struct {
	hash uint64
	nn   int
}

// cacheEntry computes its Derived at most once successfully; concurrent
// requesters for the same key serialise on the entry mutex and share the
// result. A sync.Once would mark itself done even when the computation
// panics, leaving a permanently nil value behind — with the mutex, a panic
// propagates to the caller that triggered it, the done flag stays false,
// and the next request for the key retries the computation.
type cacheEntry struct {
	mu   sync.Mutex
	done bool
	d    *tsp.Derived
	err  error
}

// derived returns the entry's value, computing it under the entry lock if
// no previous computation finished. A returned error is cached alongside
// the value: derivation errors (e.g. tsp.ErrF32Precision) are deterministic
// properties of the instance content, so recomputing cannot clear them.
func (e *cacheEntry) derived(compute func() (*tsp.Derived, error)) (*tsp.Derived, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.d, e.err = compute()
		e.done = true
	}
	return e.d, e.err
}

// Cache memoizes instance-derived read-only data across solves. It is safe
// for concurrent use: the first request for a (content hash, nn) key
// computes the data (a miss), every later or concurrent request shares it
// (a hit). Values are retained for the cache's lifetime — a pool serving a
// bounded instance set holds one entry per distinct instance/nn pair, Θ(n²)
// bytes each, the same footprint one solve of that instance needs anyway.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64

	// compute overrides tsp.Instance.ComputeDerived in tests (nil selects
	// the real computation).
	compute func(in *tsp.Instance, nn int) (*tsp.Derived, error)
}

// NewCache returns an empty derived-data cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Derived returns the shared derived data of the instance at NN width nn,
// computing it on first use. The result is shared across callers and must
// be treated as read-only. A nil cache computes fresh data every call
// (counting nothing), so call sites need no nil checks. A computation that
// panics does not poison the key: the panic propagates to the caller and
// the next request for the same key recomputes.
func (c *Cache) Derived(in *tsp.Instance, nn int) (*tsp.Derived, error) {
	nn = in.EffectiveNN(nn)
	if c == nil {
		return in.ComputeDerived(nn)
	}
	k := cacheKey{hash: in.ContentHash(), nn: nn}
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &cacheEntry{}
		c.entries[k] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	return e.derived(func() (*tsp.Derived, error) {
		if c.compute != nil {
			return c.compute(in, nn)
		}
		return in.ComputeDerived(nn)
	})
}

// Stats returns the cumulative hit and miss counts. A hit is any Derived
// call that found the key already present (including calls that waited on
// an in-flight computation); a miss is a call that had to compute.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct derived-data entries resident.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
