package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"antgpu/internal/tsp"
)

func TestRunAllJobsOnceInOrderSlots(t *testing.T) {
	const n = 50
	var ran [n]atomic.Int32
	errs := Run(context.Background(), n, 4, func(_ context.Context, i int) error {
		ran[i].Add(1)
		if i%7 == 3 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if len(errs) != n {
		t.Fatalf("got %d errors for %d jobs", len(errs), n)
	}
	for i := 0; i < n; i++ {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("job %d ran %d times", i, got)
		}
		if (i%7 == 3) != (errs[i] != nil) {
			t.Errorf("job %d: err = %v", i, errs[i])
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	gate := make(chan struct{})
	go func() {
		defer wg.Done()
		Run(context.Background(), 20, workers, func(_ context.Context, i int) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return nil
		})
	}()
	for i := 0; i < 20; i++ {
		gate <- struct{}{}
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeded %d workers", got, workers)
	}
}

func TestRunZeroJobs(t *testing.T) {
	errs := Run(context.Background(), 0, 4, func(_ context.Context, i int) error {
		t.Error("job ran for n = 0")
		return nil
	})
	if len(errs) != 0 {
		t.Errorf("got %d errors for 0 jobs", len(errs))
	}
}

func TestRunCancelledContextFailsUnstartedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	errs := Run(ctx, 10, 1, func(ctx context.Context, i int) error {
		once.Do(func() {
			close(started)
			cancel()
		})
		return ctx.Err()
	})
	<-started
	canceled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			canceled++
		}
	}
	if canceled < 9 {
		t.Errorf("only %d/10 jobs observed the cancellation", canceled)
	}
}

func loadInstance(t *testing.T, name string) *tsp.Instance {
	t.Helper()
	in, err := tsp.LoadBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache()
	in := loadInstance(t, "att48")
	d1, err := c.Derived(in, 30)
	if err != nil || d1 == nil || d1.N != in.N() {
		t.Fatalf("bad derived data: %+v (err %v)", d1, err)
	}
	d2, _ := c.Derived(in, 30)
	if d1 != d2 {
		t.Error("second lookup did not share the cached derived data")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1 / 1", hits, misses)
	}

	// A different NN width is a different key.
	d3, _ := c.Derived(in, 10)
	if d3 == d1 {
		t.Error("nn = 10 shared the nn = 30 entry")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}

	// Same content under a different name still hits (content hash ignores
	// the name).
	clone, err := tsp.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Derived(clone, 30); got != d1 {
		t.Error("identical content under a second *Instance missed the cache")
	}
}

func TestCacheNilReceiverComputesFresh(t *testing.T) {
	var c *Cache
	in := loadInstance(t, "att48")
	d, err := c.Derived(in, 30)
	if err != nil || d == nil || d.N != in.N() {
		t.Fatalf("nil cache returned bad derived data: %+v (err %v)", d, err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("nil cache reported traffic: %d / %d", hits, misses)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	in := loadInstance(t, "kroC100")
	const goroutines = 16
	results := make([]*tsp.Derived, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], _ = c.Derived(in, 30)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different derived pointer", g)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Errorf("%d misses for one key, want 1 (singleflight)", misses)
	}
	if hits != goroutines-1 {
		t.Errorf("%d hits, want %d", hits, goroutines-1)
	}
}

// TestRunHookedObservesEveryJob: every job gets exactly one Start and one
// Done call, the reported queue depth and busy count stay within the
// scheduler's invariants, and job errors reach the Done hook.
func TestRunHookedObservesEveryJob(t *testing.T) {
	const n, workers = 40, 4
	var mu sync.Mutex
	starts := make(map[int]int)
	dones := make(map[int]int)
	boom := errors.New("boom")
	maxBusy := 0

	h := Hooks{
		Start: func(i, queued, busy int) {
			mu.Lock()
			defer mu.Unlock()
			starts[i]++
			if queued < 0 || queued >= n {
				t.Errorf("job %d: queued %d out of range", i, queued)
			}
			if busy < 1 || busy > workers {
				t.Errorf("job %d: busy %d out of [1, %d]", i, busy, workers)
			}
			if busy > maxBusy {
				maxBusy = busy
			}
		},
		Done: func(i int, err error, busy int) {
			mu.Lock()
			defer mu.Unlock()
			dones[i]++
			if busy < 0 || busy >= workers {
				t.Errorf("job %d: post-done busy %d out of [0, %d)", i, busy, workers)
			}
			if (i == 7) != (err == boom) {
				t.Errorf("job %d: Done err = %v", i, err)
			}
		},
	}
	// Jobs 0..workers-1 are picked up first, one per worker; a barrier
	// holds them in flight together so the busy gauge provably exceeds 1.
	var barrier sync.WaitGroup
	barrier.Add(workers)
	errs := RunHooked(context.Background(), n, workers, func(_ context.Context, i int) error {
		if i < workers {
			barrier.Done()
			barrier.Wait()
		}
		if i == 7 {
			return boom
		}
		return nil
	}, h)

	for i := 0; i < n; i++ {
		if starts[i] != 1 || dones[i] != 1 {
			t.Fatalf("job %d: %d starts, %d dones, want 1 and 1", i, starts[i], dones[i])
		}
	}
	if maxBusy != workers {
		t.Errorf("max busy %d, want all %d workers observed in flight", maxBusy, workers)
	}
	if !errors.Is(errs[7], boom) {
		t.Errorf("errs[7] = %v, want boom", errs[7])
	}
}

// Run with no hooks must not pay the hook bookkeeping; this just pins the
// delegation so a refactor can't fork the two paths apart.
func TestRunDelegatesToRunHooked(t *testing.T) {
	var ran atomic.Int32
	errs := Run(context.Background(), 5, 2, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if ran.Load() != 5 || len(errs) != 5 {
		t.Fatalf("ran %d jobs with %d errs, want 5 and 5", ran.Load(), len(errs))
	}
}

// TestCachePanicDoesNotPoisonEntry: a derived-data computation that panics
// must not leave a permanently nil entry behind. With the sync.Once-based
// entry this failed: the Once completed despite the panic, and every later
// request for the key got nil forever.
func TestCachePanicDoesNotPoisonEntry(t *testing.T) {
	c := NewCache()
	in := loadInstance(t, "att48")
	calls := 0
	c.compute = func(in *tsp.Instance, nn int) (*tsp.Derived, error) {
		calls++
		if calls == 1 {
			panic("transient failure")
		}
		return in.ComputeDerived(nn)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first Derived call swallowed the computation panic")
			}
		}()
		c.Derived(in, 30)
	}()

	d, err := c.Derived(in, 30)
	if err != nil || d == nil {
		t.Fatalf("entry poisoned: Derived returned %v, %v after an earlier panic", d, err)
	}
	if d.N != in.N() {
		t.Fatalf("retry returned bad derived data: %+v", d)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (panic then retry)", calls)
	}
	// The retried value is now cached like any other.
	if d2, _ := c.Derived(in, 30); d2 != d {
		t.Error("post-retry lookup did not share the cached value")
	}
	if calls != 2 {
		t.Errorf("compute ran %d times after the shared lookup, want still 2", calls)
	}
}

// TestRunHookedCancelSkipsUndispatchedJobs: after a cancellation, the jobs
// that never started must fail fast with ctx.Err() without passing through
// the Start/Done hooks. The old scheduler dispatched every remaining index
// through the workers and fired Start (incrementing queue/busy telemetry)
// before checking the context, counting jobs as started that never ran.
func TestRunHookedCancelSkipsUndispatchedJobs(t *testing.T) {
	const n, workers = 50, 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	running := make(chan struct{}, n)
	release := make(chan struct{})
	var starts, dones atomic.Int32
	var errs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		errs = RunHooked(ctx, n, workers, func(ctx context.Context, i int) error {
			running <- struct{}{}
			<-release
			return nil
		}, Hooks{
			Start: func(int, int, int) { starts.Add(1) },
			Done:  func(int, error, int) { dones.Add(1) },
		})
	}()

	// Wait for both workers to be inside a job, cancel, then let them finish.
	<-running
	<-running
	cancel()
	close(release)
	<-done

	if got := starts.Load(); got != workers {
		t.Errorf("Start hook fired %d times, want %d (cancelled jobs must not start)", got, workers)
	}
	if got := dones.Load(); got != workers {
		t.Errorf("Done hook fired %d times, want %d", got, workers)
	}
	ok, cancelled := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Errorf("unexpected job error: %v", err)
		}
	}
	if ok != workers || cancelled != n-workers {
		t.Errorf("got %d ok / %d cancelled, want %d / %d", ok, cancelled, workers, n-workers)
	}
}

func TestWorkerShare(t *testing.T) {
	cases := []struct{ procs, pool, want int }{
		{8, 4, 2},   // even split
		{8, 1, 8},   // single-slot pool keeps the machine
		{8, 3, 2},   // rounds down
		{2, 8, 1},   // oversubscribed pool floors at one core each
		{1, 1, 1},
		{0, 4, 1},   // degenerate inputs degrade to 1
		{4, 0, 1},
		{-3, -2, 1},
	}
	for _, c := range cases {
		if got := WorkerShare(c.procs, c.pool); got != c.want {
			t.Errorf("WorkerShare(%d, %d) = %d, want %d", c.procs, c.pool, got, c.want)
		}
	}
}
