// Package sched is the concurrency substrate of batch solving: a bounded
// worker pool that runs many independent jobs across goroutines while
// preserving submission order in the results, and a content-hash-keyed
// cache that shares instance-derived read-only data (distance matrices,
// NN lists, greedy-NN tour lengths) across all solves of one instance.
//
// The design follows the layering of the GPU ACO literature: the in-colony
// parallelization strategies of Cecilia et al. live in internal/core, the
// independent-runs model of Stützle in internal/aco, and this package adds
// the next layer up — many independent colonies in flight at once, sharing
// nothing but immutable instance data (Skinderowicz's concurrent-colonies
// observation). Nothing in here knows about ants or GPUs; it schedules
// opaque jobs and memoizes opaque derived data.
package sched

import (
	"context"
	"runtime"
	"sync"
)

// Run executes n independent jobs on at most `workers` goroutines and
// returns the per-job errors in job order. workers <= 0 selects
// runtime.GOMAXPROCS(0); the worker count never exceeds n. Jobs are started
// in index order (completion order is up to the scheduler), each receives
// the context, and a context cancelled mid-batch fast-fails every
// not-yet-started job with ctx.Err() — without dispatching it to a worker
// — while already-running jobs finish on their own cancellation checks.
// Run returns only after every started job finished.
func Run(ctx context.Context, n, workers int, job func(ctx context.Context, i int) error) []error {
	return RunHooked(ctx, n, workers, job, Hooks{})
}

// WorkerShare splits gomaxprocs cores fairly across poolWorkers concurrent
// jobs: each job gets gomaxprocs/poolWorkers cores, never fewer than one.
// It sizes the per-request tensor-engine worker count in the service: when
// the admission pool runs several solves at once, giving each of them the
// whole machine would just thrash, so each gets its share — and on a
// lightly-provisioned pool (poolWorkers == 1) the single solve keeps every
// core. Non-positive inputs degrade to 1.
func WorkerShare(gomaxprocs, poolWorkers int) int {
	if gomaxprocs < 1 || poolWorkers < 1 {
		return 1
	}
	share := gomaxprocs / poolWorkers
	if share < 1 {
		return 1
	}
	return share
}

// Hooks observe the pool's scheduling decisions — the introspection points
// the metrics layer turns into queue-depth and worker-utilisation gauges.
// Either hook may be nil. Hooks are called from worker goroutines and must
// be safe for concurrent use.
type Hooks struct {
	// Start is called when a worker picks job i up, with the number of
	// submitted jobs not yet started (the queue depth behind it) and the
	// number of workers now busy including this one.
	Start func(i, queued, busy int)
	// Done is called when job i returns, with its error and the number of
	// workers still busy after it.
	Done func(i int, err error, busy int)
}

// RunHooked is Run with scheduling hooks.
func RunHooked(ctx context.Context, n, workers int, job func(ctx context.Context, i int) error, h Hooks) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// started counts jobs picked up, busy counts workers inside job; both
	// only matter when hooks observe them.
	var mu sync.Mutex
	started, busy := 0, 0

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A job dispatched before the cancellation but picked up
				// after it never runs, so it must not pass through the
				// hooks either: it was never started and no worker went
				// busy on it. Checking the context before the Start hook
				// keeps the queue/busy gauges honest under cancel.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if h.Start != nil || h.Done != nil {
					mu.Lock()
					started++
					busy++
					q, b := n-started, busy
					mu.Unlock()
					if h.Start != nil {
						h.Start(i, q, b)
					}
				}
				errs[i] = job(ctx, i)
				if h.Start != nil || h.Done != nil {
					mu.Lock()
					busy--
					b := busy
					mu.Unlock()
					if h.Done != nil {
						h.Done(i, errs[i], b)
					}
				}
			}
		}()
	}
	// Feed jobs until the context dies; jobs never dispatched fail fast
	// here instead of trickling one-by-one through the workers, so a
	// cancelled batch tears down as quickly as its running jobs allow. The
	// undispatched indices are untouched by any worker, so writing their
	// errors from this goroutine is race-free.
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return errs
}
