// Benchmarks regenerating the paper's tables and figures (one Benchmark
// per table/figure, reporting the key simulated milliseconds as custom
// metrics) plus wall-clock micro-benchmarks of the simulator itself.
//
// The table benches default to instances up to pcb442 so `go test -bench=.`
// finishes in minutes; set ANTGPU_BENCH_MAXN=3000 for the full sweep
// (cmd/acobench is the more convenient way to regenerate full tables).
package antgpu_test

import (
	"os"
	"strconv"
	"testing"

	"antgpu"
	"antgpu/internal/aco"
	"antgpu/internal/bench"
	"antgpu/internal/core"
	"antgpu/internal/cuda"
	"antgpu/internal/tsp"
)

func benchMaxN() int {
	if s := os.Getenv("ANTGPU_BENCH_MAXN"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return 450
}

func benchConfig() bench.Config {
	return bench.Config{MaxN: benchMaxN(), SampleBudget: 16 << 20}
}

// cell returns the value at (rowName, last instance) of a table.
func cell(t *bench.Table, row string) float64 {
	for _, r := range t.Rows {
		if r.Name == row && len(r.Values) > 0 {
			return r.Values[len(r.Values)-1]
		}
	}
	return 0
}

// BenchmarkTable2 regenerates Table II (tour construction, Tesla C1060).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.TableII(cuda.TeslaC1060(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "1. Baseline Version"), "simms/v1")
			b.ReportMetric(cell(t, "8. Data Parallelism + Texture Memory"), "simms/v8")
			b.ReportMetric(cell(t, "Total speed-up attained"), "speedup/total")
		}
	}
}

// BenchmarkTable3 regenerates Table III (pheromone update, Tesla C1060).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.TablePheromone(cuda.TeslaC1060(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "1. Atomic Ins. + Shared Memory"), "simms/atomic")
			b.ReportMetric(cell(t, "5. Scatter to Gather"), "simms/scatter")
			b.ReportMetric(cell(t, "Total slow-down incurred"), "slowdown/total")
		}
	}
}

// BenchmarkTable4 regenerates Table IV (pheromone update, Tesla M2050).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.TablePheromone(cuda.TeslaM2050(), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "1. Atomic Ins. + Shared Memory"), "simms/atomic")
			b.ReportMetric(cell(t, "Total slow-down incurred"), "slowdown/total")
		}
	}
}

var bothDevices = []*cuda.Device{cuda.TeslaC1060(), cuda.TeslaM2050()}

// BenchmarkFigure4a regenerates Figure 4(a) (NN-list construction
// speed-up on both devices).
func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure4a(bothDevices, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "Speed-up Tesla C1060"), "speedup/c1060")
			b.ReportMetric(cell(t, "Speed-up Tesla M2050"), "speedup/m2050")
		}
	}
}

// BenchmarkFigure4b regenerates Figure 4(b) (fully probabilistic
// construction speed-up on both devices).
func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure4b(bothDevices, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "Speed-up Tesla C1060"), "speedup/c1060")
			b.ReportMetric(cell(t, "Speed-up Tesla M2050"), "speedup/m2050")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (pheromone update speed-up on
// both devices).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure5(bothDevices, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "Speed-up Tesla C1060"), "speedup/c1060")
			b.ReportMetric(cell(t, "Speed-up Tesla M2050"), "speedup/m2050")
		}
	}
}

// --- micro-benchmarks: wall-clock cost of the simulator itself -----------

// BenchmarkTourKernel measures the host wall-clock cost of simulating one
// tour-construction stage per version on a mid-size instance.
func BenchmarkTourKernel(b *testing.B) {
	in := tsp.MustLoadBenchmark("kroC100")
	for _, v := range core.TourVersions {
		b.Run(v.String(), func(b *testing.B) {
			e, err := core.NewEngine(cuda.TeslaC1060(), in, aco.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sim float64
			for i := 0; i < b.N; i++ {
				stage, err := e.ConstructTours(v)
				if err != nil {
					b.Fatal(err)
				}
				sim = stage.Millis()
			}
			b.ReportMetric(sim, "simms")
		})
	}
}

// BenchmarkPheromoneKernel measures one pheromone-update stage per version.
func BenchmarkPheromoneKernel(b *testing.B) {
	in := tsp.MustLoadBenchmark("kroC100")
	for _, v := range core.PherVersions {
		b.Run(v.String(), func(b *testing.B) {
			e, err := core.NewEngine(cuda.TeslaC1060(), in, aco.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.ConstructTours(core.TourNNList); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sim float64
			for i := 0; i < b.N; i++ {
				stage, err := e.UpdatePheromone(v)
				if err != nil {
					b.Fatal(err)
				}
				sim = stage.Millis()
			}
			b.ReportMetric(sim, "simms")
		})
	}
}

// BenchmarkCPUColonyIteration measures one full sequential AS iteration.
func BenchmarkCPUColonyIteration(b *testing.B) {
	for _, variant := range []aco.Variant{aco.NNListConstruction, aco.FullProbabilistic} {
		b.Run(variant.String(), func(b *testing.B) {
			in := tsp.MustLoadBenchmark("kroC100")
			c, err := aco.New(in, aco.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Iterate(variant)
			}
		})
	}
}

// BenchmarkSolveEndToEnd measures the public API end to end.
func BenchmarkSolveEndToEnd(b *testing.B) {
	in := tsp.MustLoadBenchmark("att48")
	b.Run("cpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := antgpu.Solve(in, antgpu.SolveOptions{Iterations: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := antgpu.Solve(in, antgpu.SolveOptions{Iterations: 5, Backend: antgpu.BackendGPU})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorLaunch measures the raw per-launch overhead of the
// simulator with a trivial kernel.
func BenchmarkSimulatorLaunch(b *testing.B) {
	dev := cuda.TeslaC1060()
	buf := cuda.MallocF32("x", 1<<16)
	cfg := cuda.LaunchConfig{Grid: cuda.D1(64), Block: cuda.D1(256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cuda.Launch(dev, cfg, "copy", func(blk *cuda.Block) {
			blk.Run(func(t *cuda.Thread) {
				buf.Data()[t.GlobalID()] = float32(t.GlobalID())
				t.Charge(1)
			})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ----------

// BenchmarkAblationTheta sweeps the tiled scatter-to-gather tile size.
func BenchmarkAblationTheta(b *testing.B) {
	cfg := bench.Config{Instances: []string{"a280"}, SampleBudget: 16 << 20}
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationTheta(cuda.TeslaC1060(), cfg, []int{64, 256, 512})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "theta = 64"), "simms/theta64")
			b.ReportMetric(cell(t, "theta = 256"), "simms/theta256")
		}
	}
}

// BenchmarkAblationBlockSize sweeps the data-parallel block size.
func BenchmarkAblationBlockSize(b *testing.B) {
	cfg := bench.Config{Instances: []string{"kroC100"}, SampleBudget: 16 << 20}
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationDataBlock(cuda.TeslaC1060(), cfg, []int{64, 128, 256})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "block = 128 threads"), "simms/block128")
		}
	}
}

// BenchmarkAblationNN sweeps the nearest-neighbour list length.
func BenchmarkAblationNN(b *testing.B) {
	cfg := bench.Config{Instances: []string{"kroC100"}, SampleBudget: 16 << 20}
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationNN(cuda.TeslaC1060(), cfg, []int{10, 30, 60})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(t, "nn = 30"), "simms/nn30")
		}
	}
}

// BenchmarkGPULocalSearch measures the 2-opt kernel on constructed tours.
func BenchmarkGPULocalSearch(b *testing.B) {
	in := tsp.MustLoadBenchmark("kroC100")
	e, err := core.NewEngine(cuda.TeslaC1060(), in, aco.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := e.ConstructTours(core.TourNNList); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stage, err := e.LocalSearchKernel()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(stage.Millis(), "simms")
		}
	}
}

// BenchmarkCPUTwoOpt measures the sequential 2-opt from random tours.
func BenchmarkCPUTwoOpt(b *testing.B) {
	in := tsp.MustLoadBenchmark("kroC100")
	nnList := in.NNList(20)
	tour := in.NearestNeighbourTour(0)
	work := make([]int32, len(tour))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, tour)
		aco.TwoOpt(in, work, nnList, 20, nil)
	}
}
