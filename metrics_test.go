package antgpu_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"antgpu"
)

// TestMetricsEndToEnd is the acceptance path from the issue: attach a
// registry to a pool, run a batch, scrape /metrics over HTTP, and require
// a valid exposition containing at least one kernel-labeled hardware
// counter, one convergence gauge and one scheduler gauge. The JSON debug
// endpoint must round-trip into a MetricsSnapshot.
func TestMetricsEndToEnd(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	reg := antgpu.NewMetrics()
	srv, err := antgpu.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := antgpu.NewPool(antgpu.PoolOptions{Workers: 2, Metrics: reg})
	if pool.Metrics() != reg {
		t.Fatal("Pool.Metrics() does not return the attached registry")
	}
	rep, err := pool.SolveBatch(context.Background(), []antgpu.SolveRequest{
		{Instance: in, Options: antgpu.SolveOptions{
			Iterations: 3, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 1},
		}},
		{Instance: in, Options: antgpu.SolveOptions{
			Iterations: 3, Params: antgpu.Params{Seed: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range rep.Results {
		if it.Err != nil {
			t.Fatalf("request %d: %v", i, it.Err)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if errs := antgpu.LintMetrics(strings.NewReader(string(body))); len(errs) > 0 {
		t.Errorf("scraped exposition fails lint: %v", errs)
	}
	for _, want := range []string{
		`antgpu_kernel_launches_total{kernel="`, // hardware counter, kernel-labeled
		`antgpu_pheromone_entropy{`,             // convergence gauge
		"antgpu_pool_queue_depth",               // scheduler gauge
		`antgpu_solves_total{`,
		`backend="gpu"`,
		`backend="cpu"`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scraped exposition missing %q", want)
		}
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/antgpu", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	var snap antgpu.MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/antgpu JSON: %v", err)
	}
	if snap.Family("antgpu_kernel_launches_total") == nil {
		t.Error("/debug/antgpu snapshot missing the kernel launch counter")
	}
}

// TestBatchSurfacesRecoveryReports: a faulty request's RecoveryReport is
// visible on its BatchItem and aggregated into the report totals, while
// fault-free requests stay nil.
func TestBatchSurfacesRecoveryReports(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := antgpu.SolveBatch(context.Background(), []antgpu.SolveRequest{
		{Instance: in, Options: antgpu.SolveOptions{
			Iterations: 6, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 1},
			Faults: &antgpu.FaultPlan{Seed: 7, LaunchRate: 0.08},
		}},
		{Instance: in, Options: antgpu.SolveOptions{
			Iterations: 3, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 1},
		}},
	}, antgpu.PoolOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range rep.Results {
		if it.Err != nil {
			t.Fatalf("request %d: %v", i, it.Err)
		}
	}

	faulty := rep.Results[0].Recovery
	if faulty == nil {
		t.Fatal("faulty request's BatchItem.Recovery is nil")
	}
	if faulty.Faults == 0 {
		t.Error("faulty request reports zero faults at LaunchRate 0.08 over 6 iterations")
	}
	if clean := rep.Results[1].Recovery; clean != nil {
		t.Errorf("fault-free request surfaced a recovery report: %+v", clean)
	}
	wantFailovers := 0
	if faulty.Degraded {
		wantFailovers = 1
	}
	if rep.Faults != faulty.Faults || rep.Retries != faulty.Retries ||
		rep.Resets != faulty.Resets || rep.Failovers != wantFailovers {
		t.Errorf("report aggregates (faults %d retries %d resets %d failovers %d) != item report %+v",
			rep.Faults, rep.Retries, rep.Resets, rep.Failovers, *faulty)
	}
}

// TestSolveWithMetricsSameResult: attaching a registry must not change
// what a solve computes — identical tours and simulated time.
func TestSolveWithMetricsSameResult(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	opts := antgpu.SolveOptions{Iterations: 5, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 3}}
	plain, err := antgpu.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Metrics = antgpu.NewMetrics()
	opts.Optimum = 10628
	metered, err := antgpu.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestLen != metered.BestLen || plain.SimulatedSeconds != metered.SimulatedSeconds {
		t.Errorf("metrics changed the solve: %d/%g vs %d/%g",
			plain.BestLen, plain.SimulatedSeconds, metered.BestLen, metered.SimulatedSeconds)
	}
}

// BenchmarkSolveMetrics quantifies the observability tax: "off" is the
// nil-registry fast path (the issue's zero-overhead bar: within noise of
// the pre-metrics baseline), "on" pays for counter updates plus the
// per-iteration O(n²) pheromone statistics.
func BenchmarkSolveMetrics(b *testing.B) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := antgpu.SolveOptions{
					Iterations: 5, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 1},
				}
				if mode == "on" {
					opts.Metrics = antgpu.NewMetrics()
				}
				if _, err := antgpu.Solve(in, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
