// Package antgpu is a Go reproduction of Cecilia, García, Ujaldón, Nisbet
// and Amos, "Parallelization Strategies for Ant Colony Optimisation on
// GPUs" (IPDPS Workshops / arXiv:1101.2678, 2011).
//
// The library solves the symmetric Travelling Salesman Problem with the
// Ant System, either on the sequential CPU baseline (a Go port of the
// Stützle ACOTSP code the paper compares against) or on a deterministic
// functional SIMT simulator of the paper's two GPUs — the Tesla C1060 and
// Tesla M2050 — running the paper's kernel designs: eight tour-construction
// versions (Table II) and five pheromone-update versions (Tables III/IV).
//
// Quick start:
//
//	in, _ := antgpu.LoadBenchmark("att48")
//	res, _ := antgpu.Solve(in, antgpu.SolveOptions{Iterations: 50})
//	fmt.Println(res.BestLen, res.BestTour)
//
// To run on the simulated GPU instead:
//
//	opts := antgpu.SolveOptions{
//		Iterations: 50,
//		Backend:    antgpu.BackendGPU,
//		Device:     antgpu.TeslaM2050(),
//	}
//	res, _ := antgpu.Solve(in, opts)
//	fmt.Printf("simulated GPU time: %.2f ms\n", res.SimulatedSeconds*1e3)
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/acobench; the underlying pieces (the simulator, the
// kernels, the instrumented CPU baseline) are re-exported here for
// programmatic use.
package antgpu

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"antgpu/internal/aco"
	"antgpu/internal/core"
	"antgpu/internal/cuda"
	"antgpu/internal/metrics"
	"antgpu/internal/obslog"
	"antgpu/internal/sched"
	"antgpu/internal/tensor"
	"antgpu/internal/trace"
	"antgpu/internal/tsp"
)

// Re-exported substrate types. The facade keeps downstream users to one
// import while the implementation stays in focused internal packages.
type (
	// Instance is a symmetric TSP instance (TSPLIB-compatible).
	Instance = tsp.Instance
	// Params are the Ant System parameters (α, β, ρ, m, nn, seed).
	Params = aco.Params
	// Colony is the sequential CPU Ant System.
	Colony = aco.Colony
	// Engine is the GPU Ant System on the simulated device.
	Engine = core.Engine
	// Device is a simulated GPU model.
	Device = cuda.Device
	// TourVersion selects a tour-construction kernel design (Table II).
	TourVersion = core.TourVersion
	// PherVersion selects a pheromone-update kernel design (Tables III/IV).
	PherVersion = core.PherVersion
	// CPUModel converts instrumented CPU meters into deterministic times.
	CPUModel = aco.CPUModel
	// Trace is a profiling collector: every kernel launch and algorithm
	// phase on one simulated timeline, exportable as a Chrome trace-event
	// JSON (WriteChromeTrace) or a per-kernel summary (WriteSummary).
	Trace = trace.Collector
	// KernelSummary is one aggregated per-kernel row of a Trace summary.
	KernelSummary = trace.KernelSummary
	// FaultPlan is a seed-driven deterministic fault-injection plan for the
	// simulated device: launch failures, watchdog timeouts, ECC bit flips
	// and allocation failures at configurable rates.
	FaultPlan = cuda.FaultPlan
	// RecoveryOptions tune the fault-tolerant solver runtime (retry budget,
	// backoff, CPU failover).
	RecoveryOptions = core.RecoveryOptions
	// RecoveryReport records what the fault-tolerant runtime did during a
	// solve (faults, retries, resets, degradation).
	RecoveryReport = core.RecoveryReport
)

// Typed device-fault errors, matchable with errors.Is on any error returned
// by a GPU-backend Solve.
var (
	ErrLaunchFailed = cuda.ErrLaunchFailed
	ErrOOM          = cuda.ErrOOM
	ErrWatchdog     = cuda.ErrWatchdog
	ErrECC          = cuda.ErrECC
)

// ErrInvalidParams is wrapped by every parameter-validation failure (AS,
// ACS and MMAS alike): out-of-range α, β, ρ, ant counts, NN widths, q0, ξ.
// Match it with errors.Is to distinguish bad parameters from device faults.
var ErrInvalidParams = aco.ErrInvalidParams

// ParseFaultSpec parses a command-line fault specification like
// "rate=0.02,sticky=0.1,seed=7" into a FaultPlan (see the -inject flag of
// cmd/acotsp and cmd/acobench).
func ParseFaultSpec(spec string) (*FaultPlan, error) { return cuda.ParseFaultSpec(spec) }

// Devices of the paper's evaluation.
var (
	TeslaC1060 = cuda.TeslaC1060
	TeslaM2050 = cuda.TeslaM2050
)

// Tour-construction versions (paper Table II).
const (
	TourBaseline            = core.TourBaseline
	TourChoiceKernel        = core.TourChoiceKernel
	TourDeviceRNG           = core.TourDeviceRNG
	TourNNList              = core.TourNNList
	TourNNShared            = core.TourNNShared
	TourNNSharedTexture     = core.TourNNSharedTexture
	TourDataParallel        = core.TourDataParallel
	TourDataParallelTexture = core.TourDataParallelTexture
)

// Pheromone-update versions (paper Tables III and IV).
const (
	PherAtomicShared       = core.PherAtomicShared
	PherAtomic             = core.PherAtomic
	PherReduction          = core.PherReduction
	PherScatterGatherTiled = core.PherScatterGatherTiled
	PherScatterGather      = core.PherScatterGather
)

// DefaultParams returns the paper's Ant System settings (α=1, β=2, ρ=0.5,
// m=n, nn=30).
func DefaultParams() Params { return aco.DefaultParams() }

// LoadBenchmark returns one of the paper's benchmark instances by name
// (att48, kroC100, a280, pcb442, d657, pr1002, pr2392) — deterministic
// synthetic stand-ins of the TSPLIB originals with identical sizes and
// distance functions.
func LoadBenchmark(name string) (*Instance, error) { return tsp.LoadBenchmark(name) }

// ParseTSPLIB reads a TSPLIB file from disk, so real TSPLIB instances can
// be used instead of the synthetic stand-ins.
func ParseTSPLIB(path string) (*Instance, error) { return tsp.ParseFile(path) }

// Benchmarks lists the paper's benchmark instance names in size order.
func Benchmarks() []string {
	out := make([]string, len(tsp.PaperBenchmarks))
	copy(out, tsp.PaperBenchmarks)
	return out
}

// Backend selects where the Ant System runs.
type Backend int

const (
	// BackendCPU runs the sequential baseline colony.
	BackendCPU Backend = iota
	// BackendGPU runs the paper's kernels on the simulated device.
	BackendGPU
	// BackendTensor runs the host-native tensorized engine: the whole
	// colony iteration as flat float32 matrix kernels with a precomputed
	// weight matrix, fused evaporate+deposit and cumulative-sum roulette.
	// Same seed determinism contract as the CPU colony; tour lengths stay
	// exact int64, only selection probabilities are float32 (DESIGN §17).
	// Supports AS (with local search), ACS and MMAS.
	BackendTensor
)

// String returns the backend's short name, used as a metric label value.
func (b Backend) String() string {
	switch b {
	case BackendCPU:
		return "cpu"
	case BackendGPU:
		return "gpu"
	case BackendTensor:
		return "tensor"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Algorithm selects the ACO variant.
type Algorithm int

const (
	// AlgorithmAS is the Ant System the paper evaluates.
	AlgorithmAS Algorithm = iota
	// AlgorithmACS is the Ant Colony System, the paper's stated future
	// work: pseudo-random proportional rule, local pheromone update,
	// best-so-far global update.
	AlgorithmACS
	// AlgorithmMMAS is the Max-Min Ant System of the paper's related work:
	// single depositing ant, trails clamped to [τmin, τmax], stagnation
	// re-initialisation. Its pheromone update needs no atomics at all.
	AlgorithmMMAS
	// AlgorithmEAS is the Elitist Ant System: the AS update plus a weighted
	// best-so-far deposit each iteration.
	AlgorithmEAS
	// AlgorithmRank is the Rank-based Ant System: only the w best-ranked
	// ants deposit, weighted by rank — another atomics-free update on the
	// GPU.
	AlgorithmRank
)

// String returns the algorithm's short name, used as a metric label value.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmAS:
		return "as"
	case AlgorithmACS:
		return "acs"
	case AlgorithmMMAS:
		return "mmas"
	case AlgorithmEAS:
		return "eas"
	case AlgorithmRank:
		return "rank"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ACSParams are the Ant Colony System parameters.
type ACSParams = aco.ACSParams

// DefaultACSParams returns the standard ACS settings (q0=0.9, ξ=0.1,
// ρ=0.1, m=10).
func DefaultACSParams() ACSParams { return aco.DefaultACSParams() }

// MMASParams are the Max-Min Ant System parameters.
type MMASParams = aco.MMASParams

// DefaultMMASParams returns the standard MMAS settings (ρ=0.02, m=n).
func DefaultMMASParams() MMASParams { return aco.DefaultMMASParams() }

// SolveOptions configures Solve.
type SolveOptions struct {
	// Algorithm selects the ACO variant (default the paper's Ant System).
	Algorithm Algorithm
	// ACS are the Ant Colony System parameters, used when Algorithm is
	// AlgorithmACS; zero value selects DefaultACSParams.
	ACS ACSParams
	// MMAS are the Max-Min Ant System parameters, used when Algorithm is
	// AlgorithmMMAS; zero value selects DefaultMMASParams.
	MMAS MMASParams
	// Params are the AS parameters. Zero-valued fields are treated as unset
	// and filled from DefaultParams one by one, so Params{Seed: 42} runs
	// with the default α, β, ρ and NN but seed 42. The same per-field rule
	// applies to ACS and MMAS (whose unset Seed additionally falls back to
	// Params.Seed). Out-of-range values fail with ErrInvalidParams.
	Params Params
	// Iterations is the number of AS iterations (default 20).
	Iterations int
	// Backend selects CPU (default) or simulated GPU.
	Backend Backend
	// Device is the simulated GPU (default Tesla M2050). GPU backend only.
	Device *Device
	// Tour selects the construction kernel (default the paper's
	// recommendation per size: data-parallel up to ~500 cities, NN-list
	// beyond). GPU backend only.
	Tour TourVersion
	// Pher selects the pheromone kernel (default atomic + shared memory,
	// the paper's winner). GPU backend only.
	Pher PherVersion
	// Variant selects the CPU construction strategy (default NN-list).
	Variant aco.Variant
	// LocalSearch applies 2-opt local search (nearest-neighbour candidate
	// lists, don't-look bits) to every ant's tour after construction — the
	// AS + local-search configuration of ACOTSP. Supported for
	// AlgorithmAS on both backends.
	LocalSearch bool
	// Profile records every kernel launch and algorithm phase on a
	// simulated timeline; the collector is returned in Result.Trace. The
	// run stays deterministic: profiling only observes, it never perturbs
	// the simulated clock or the tours.
	Profile bool
	// Faults injects deterministic device faults into the simulated GPU
	// (the plan is cloned, so the same options value always reproduces the
	// same faults). For AlgorithmAS this also engages the fault-tolerant
	// runtime; other algorithms surface the typed fault errors raw. GPU
	// backend only — the CPU backend ignores it.
	Faults *FaultPlan
	// Recovery tunes the fault-tolerant runtime (checkpoint every
	// iteration, bounded retry with backoff, device reset-and-replay,
	// graceful CPU degradation). Setting it — or Faults — routes the solve
	// through that runtime; it is supported for AlgorithmAS on the GPU
	// backend without LocalSearch.
	Recovery *RecoveryOptions
	// Metrics, when non-nil, collects telemetry from the solve into the
	// registry: solve outcome counters on every path, per-kernel hardware
	// counters from the simulated device (GPU backend), and — for
	// AlgorithmAS — per-iteration convergence gauges (best/mean tour
	// length, pheromone entropy, λ-branching). Nil (the default) disables
	// collection at zero cost. The registry only observes; solves stay
	// deterministic and byte-identical with metrics on or off.
	Metrics *Metrics
	// Optimum is the known optimal tour length of the instance, when the
	// caller has one. It feeds the antgpu_optimum_gap_ratio gauge and the
	// Gap field of OnIteration events; zero (unknown) disables both.
	Optimum int64
	// Logger, when non-nil, receives one structured JSON event per solver
	// lifecycle step — solve start/end and, on the fault-tolerant paths,
	// every fault, retry, reset, failover and checkpoint; at debug level
	// also every simulated kernel launch. Events carry the correlation in
	// the solve's context (request ID, job ID — see internal/obslog), which
	// is how the antgpud service keys every line of a solve to the HTTP
	// request that caused it. Nil (the default) disables logging at zero
	// cost; logging only observes, so solver results are byte-identical
	// with it on or off.
	Logger *Logger
	// OnIteration, when non-nil, receives one IterationEvent per completed
	// ACO iteration — iteration best/mean tour length, best-so-far, gap to
	// Optimum, pheromone entropy and λ-branching — called synchronously
	// from the solve goroutine in iteration order. It works with or
	// without Metrics and is produced by the AlgorithmAS paths on both
	// backends (including the fault-tolerant runtime); other algorithms
	// complete without events. This is the feed the antgpud service
	// streams to clients over SSE.
	OnIteration func(IterationEvent)

	// cache, when non-nil, is the batch pool's shared derived-data cache
	// (set by Pool/SolveBatch before dispatching each request). Cached data
	// is deterministic, so a cached and an uncached solve of the same
	// request return byte-identical results.
	cache *sched.Cache
}

// Result reports a Solve run.
type Result struct {
	BestTour []int32
	BestLen  int64
	// SimulatedSeconds is the accumulated simulated GPU time (GPU backend)
	// or the modelled CPU time (CPU backend) of all iterations.
	SimulatedSeconds float64
	// Trace holds the profiling timeline when SolveOptions.Profile is set.
	Trace *Trace
	// Recovery reports the fault-tolerant runtime's activity when the solve
	// ran through it (SolveOptions.Faults or SolveOptions.Recovery set).
	Recovery *RecoveryReport
}

// NewTrace returns an empty profiling collector for callers that drive an
// Engine or Colony directly instead of going through Solve.
func NewTrace() *Trace { return trace.NewCollector() }

// newTracer returns a fresh profiling collector, or nil when profiling is
// off (a nil tracer disables all span and observer hooks). The context's
// correlation, when present, is attached so the exported Chrome trace names
// the request it belongs to and can be joined against the log stream.
func newTracer(ctx context.Context, opts SolveOptions) *trace.Collector {
	if !opts.Profile {
		return nil
	}
	tr := trace.NewCollector()
	if corr, ok := obslog.FromContext(ctx); ok {
		tr.SetCorrelation(corr.RequestID, corr.JobID)
	}
	return tr
}

// launchLogger adapts the solve logger to the device's launch-observer
// hook: one debug event per simulated kernel launch, keyed by the solve's
// correlation. Installed by gpuDevice only when debug logging is on, so
// the launch path's nil check skips it entirely otherwise.
type launchLogger struct {
	ctx context.Context
	lg  *obslog.Logger
}

func (o *launchLogger) ObserveLaunch(cfg *cuda.LaunchConfig, res *cuda.LaunchResult) {
	o.lg.Debug(o.ctx, obslog.EvKernel,
		slog.String("kernel", res.Name),
		slog.String("grid", cfg.Grid.String()),
		slog.String("block", cfg.Block.String()),
		slog.Float64("sim_ms", res.Millis()))
}

// Solve runs the Ant System on the instance and returns the best tour
// found.
func Solve(in *Instance, opts SolveOptions) (*Result, error) {
	return SolveContext(context.Background(), in, opts)
}

// gpuDevice resolves the device option clone-on-solve: the solve always
// runs on a private copy of the caller's device model, carrying its own
// fault plan (a clone of SolveOptions.Faults, so repeated solves with the
// same options inject the same faults — or no plan at all when none was
// requested), allocation accounting and observer hook. The caller's
// *Device is never written, so one device value can back any number of
// concurrent solves.
//
// When a metrics registry is attached, the private clone also carries the
// hardware-counter observer, and when debug logging is on, the
// kernel-launch logger. Both assignments are guarded so a disabled
// registry/logger leaves the field a true nil interface — the launch
// path's nil check then skips the hook entirely.
func gpuDevice(ctx context.Context, opts SolveOptions) *Device {
	dev := opts.Device
	if dev == nil {
		dev = TeslaM2050()
	} else {
		dev = dev.Clone()
	}
	dev.Faults = opts.Faults.Clone()
	if opts.Metrics != nil {
		dev.Metrics = metrics.NewHW(opts.Metrics, dev)
	}
	if opts.Logger.Enabled(slog.LevelDebug) {
		dev.Log = &launchLogger{ctx: ctx, lg: opts.Logger}
	}
	return dev
}

// derivedData fetches the shared instance-derived data from the batch
// cache, or nil for a standalone solve (engines then compute their own).
// A derivation error (e.g. ErrF32Precision for instances whose distances
// exceed the exact float32 range) is surfaced to the caller.
func derivedData(opts SolveOptions, in *Instance, nn int) (*tsp.Derived, error) {
	if opts.cache == nil {
		return nil, nil
	}
	return opts.cache.Derived(in, nn)
}

// SolveContext is Solve with cancellation: the context is checked between
// iterations and its error returned promptly. No panic escapes — internal
// failures come back as errors.
func SolveContext(ctx context.Context, in *Instance, opts SolveOptions) (res *Result, err error) {
	// Registered before the recover handler so it runs after it (defers are
	// LIFO) and sees the final res/err even on a recovered panic.
	if opts.Metrics != nil {
		defer func() { recordSolve(opts.Metrics, opts, res, err) }()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("antgpu: internal error: %v", r)
		}
	}()
	if in == nil {
		return nil, fmt.Errorf("antgpu: nil instance")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 20
	}
	// Default only unset (zero-valued) fields: a Params{Seed: 42} keeps its
	// seed, a deliberate Alpha/Beta/Ants survives. Out-of-range values are
	// rejected by the engines with ErrInvalidParams.
	opts.Params = opts.Params.WithDefaults()
	if opts.Recovery != nil {
		if opts.Algorithm != AlgorithmAS || opts.Backend != BackendGPU || opts.LocalSearch {
			return nil, fmt.Errorf("antgpu: the fault-tolerant runtime supports AlgorithmAS on the GPU backend without local search (the tensor backend checkpoints through tensor.Engine.Checkpoint/Restore instead)")
		}
	}
	if opts.Logger.Enabled(slog.LevelDebug) {
		opts.Logger.Debug(ctx, obslog.EvSolveStart,
			slog.String("backend", opts.Backend.String()),
			slog.String("algorithm", opts.Algorithm.String()),
			slog.Int("n", in.N()), slog.Int("iterations", opts.Iterations))
		defer func() {
			if err != nil {
				opts.Logger.Debug(ctx, obslog.EvSolveEnd, slog.String("err", err.Error()))
			} else if res != nil {
				opts.Logger.Debug(ctx, obslog.EvSolveEnd,
					slog.Int64("best_len", res.BestLen),
					slog.Float64("sim_s", res.SimulatedSeconds))
			}
		}()
	}
	switch opts.Algorithm {
	case AlgorithmACS:
		return solveACS(ctx, in, opts)
	case AlgorithmMMAS:
		return solveMMAS(ctx, in, opts)
	case AlgorithmEAS, AlgorithmRank:
		return solveVariant(ctx, in, opts)
	}
	switch opts.Backend {
	case BackendCPU:
		d, err := derivedData(opts, in, opts.Params.NN)
		if errors.Is(err, tsp.ErrF32Precision) {
			// The float64 colony does not consume the float32 distance
			// matrix, so instances beyond the exact-float32 range stay
			// solvable on the CPU backend — just without the shared cache.
			d = nil
		} else if err != nil {
			return nil, err
		}
		c, err := aco.NewWithDerived(in, opts.Params, d)
		if err != nil {
			return nil, err
		}
		tr := newTracer(ctx, opts)
		c.Tracer = tr
		c.Conv = solveConv(opts, in)
		c.ResetMeters()
		var tour []int32
		var l int64
		if opts.LocalSearch {
			for i := 0; i < opts.Iterations; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				c.ConstructTours(opts.Variant)
				c.LocalSearchTours(c.Ants())
				c.UpdatePheromone()
			}
			tour, l = c.BestTour, c.BestLen
		} else {
			if tour, l, err = c.RunContext(ctx, opts.Variant, opts.Iterations); err != nil {
				return nil, err
			}
		}
		cpu := aco.DefaultCPU()
		total := c.ConstructMeter
		total.Add(&c.PheromoneMeter)
		total.Add(&c.ChoiceMeter)
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: cpu.Seconds(&total), Trace: tr}, nil
	case BackendGPU:
		dev := gpuDevice(ctx, opts)
		tv := opts.Tour
		if tv == 0 {
			if in.N() <= 500 {
				tv = TourDataParallelTexture
			} else {
				tv = TourNNSharedTexture
			}
		}
		pv := opts.Pher
		if pv == 0 {
			pv = PherAtomicShared
		}
		if (opts.Faults != nil || opts.Recovery != nil) && !opts.LocalSearch {
			var ro RecoveryOptions
			if opts.Recovery != nil {
				ro = *opts.Recovery
			}
			tr := newTracer(ctx, opts)
			tour, l, secs, rep, err := core.RunRecovered(ctx, dev, in, opts.Params,
				tv, pv, opts.Iterations, ro, tr, solveConv(opts, in), opts.Logger)
			if err != nil {
				return nil, err
			}
			return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: secs, Trace: tr, Recovery: rep}, nil
		}
		d, err := derivedData(opts, in, opts.Params.NN)
		if err != nil {
			return nil, err
		}
		e, err := core.NewEngineWithOptions(dev, in, opts.Params,
			core.EngineOptions{Derived: d})
		if err != nil {
			return nil, err
		}
		defer e.Free()
		tr := newTracer(ctx, opts)
		if tr != nil {
			e.SetTracer(tr)
		}
		e.SetMetrics(solveConv(opts, in))
		var tour []int32
		var l int64
		var secs float64
		if opts.LocalSearch {
			for i := 0; i < opts.Iterations; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				res, err := e.IterateWithLocalSearch(tv, pv)
				if err != nil {
					return nil, err
				}
				secs += res.Construct.Seconds() + res.Update.Seconds()
			}
			tour, l = e.Best()
		} else {
			tour, l, secs, err = e.RunContext(ctx, tv, pv, opts.Iterations)
			if err != nil {
				return nil, err
			}
		}
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: secs, Trace: tr}, nil
	case BackendTensor:
		d, err := derivedData(opts, in, opts.Params.NN)
		if errors.Is(err, tsp.ErrF32Precision) {
			// Like the CPU colony, the tensor engine scores tours in exact
			// int64 and never reads the float32 distance matrix, so it stays
			// usable beyond the exact-float32 range — without the cache.
			d = nil
		} else if err != nil {
			return nil, err
		}
		e, err := tensor.NewWithDerived(in, opts.Params, d)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		tr := newTracer(ctx, opts)
		e.Tracer = tr
		e.Conv = solveConv(opts, in)
		start := time.Now()
		var tour []int32
		var l int64
		if opts.LocalSearch {
			for i := 0; i < opts.Iterations; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				e.IterateWithLocalSearch(opts.Variant)
			}
			tour, l = e.BestTour, e.BestLen
		} else {
			if tour, l, err = e.RunContext(ctx, opts.Variant, opts.Iterations); err != nil {
				return nil, err
			}
		}
		// The tensor engine runs natively on the host, so the duration is
		// real wall-clock time, not a modelled estimate.
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: time.Since(start).Seconds(), Trace: tr}, nil
	default:
		return nil, fmt.Errorf("antgpu: unknown backend %d", opts.Backend)
	}
}

// solveMMAS runs the Max-Min Ant System variant on either backend. Like
// the AS path, only unset (zero-valued) MMAS fields are defaulted; the
// seed falls back to opts.Params.Seed when unset.
func solveMMAS(ctx context.Context, in *Instance, opts SolveOptions) (*Result, error) {
	p := opts.MMAS.WithDefaults(opts.Params.Seed)
	switch opts.Backend {
	case BackendCPU:
		c, err := aco.NewMMASColony(in, p)
		if err != nil {
			return nil, err
		}
		tr := newTracer(ctx, opts)
		c.Tracer = tr
		c.ResetMeters()
		tour, l, err := c.RunContext(ctx, opts.Variant, opts.Iterations)
		if err != nil {
			return nil, err
		}
		cpu := aco.DefaultCPU()
		total := c.ConstructMeter
		total.Add(&c.PheromoneMeter)
		total.Add(&c.ChoiceMeter)
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: cpu.Seconds(&total), Trace: tr}, nil
	case BackendGPU:
		dev := gpuDevice(ctx, opts)
		e, err := core.NewMMASEngine(dev, in, p)
		if err != nil {
			return nil, err
		}
		defer e.Free()
		tr := newTracer(ctx, opts)
		if tr != nil {
			e.SetTracer(tr)
		}
		if opts.Tour != 0 {
			e.SetTourVersion(opts.Tour)
		}
		tour, l, secs, err := e.RunContext(ctx, opts.Iterations)
		if err != nil {
			return nil, err
		}
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: secs, Trace: tr}, nil
	case BackendTensor:
		if p.Workers == 0 {
			// Like the seed, the worker knob falls back to the AS-level
			// Params of the enclosing solve options.
			p.Workers = opts.Params.Workers
		}
		e, err := tensor.NewMMAS(in, p)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		tr := newTracer(ctx, opts)
		e.Tracer = tr
		e.Conv = solveConv(opts, in)
		start := time.Now()
		tour, l, err := e.RunContext(ctx, opts.Variant, opts.Iterations)
		if err != nil {
			return nil, err
		}
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: time.Since(start).Seconds(), Trace: tr}, nil
	default:
		return nil, fmt.Errorf("antgpu: unknown backend %d", opts.Backend)
	}
}

// solveVariant runs the Elitist or Rank-based Ant System on either backend
// with the default variant parameters (e = m, w = 6).
func solveVariant(ctx context.Context, in *Instance, opts SolveOptions) (*Result, error) {
	if opts.Backend == BackendTensor {
		return nil, fmt.Errorf("antgpu: the tensor backend supports AS, ACS and MMAS; %v is not tensorized", opts.Algorithm)
	}
	tr := newTracer(ctx, opts)
	switch opts.Backend {
	case BackendCPU:
		var run func() ([]int32, int64, *aco.Colony, error)
		if opts.Algorithm == AlgorithmEAS {
			c, err := aco.NewEASColony(in, opts.Params, 0)
			if err != nil {
				return nil, err
			}
			c.Tracer = tr
			run = func() ([]int32, int64, *aco.Colony, error) {
				tour, l, err := c.RunContext(ctx, opts.Variant, opts.Iterations)
				return tour, l, c.Colony, err
			}
		} else {
			c, err := aco.NewRankColony(in, opts.Params, 0)
			if err != nil {
				return nil, err
			}
			c.Tracer = tr
			run = func() ([]int32, int64, *aco.Colony, error) {
				tour, l, err := c.RunContext(ctx, opts.Variant, opts.Iterations)
				return tour, l, c.Colony, err
			}
		}
		tour, l, col, err := run()
		if err != nil {
			return nil, err
		}
		cpu := aco.DefaultCPU()
		total := col.ConstructMeter
		total.Add(&col.PheromoneMeter)
		total.Add(&col.ChoiceMeter)
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: cpu.Seconds(&total), Trace: tr}, nil
	case BackendGPU:
		dev := gpuDevice(ctx, opts)
		var tour []int32
		var l int64
		var secs float64
		var err error
		if opts.Algorithm == AlgorithmEAS {
			var e *core.EASEngine
			if e, err = core.NewEASEngine(dev, in, opts.Params, 0); err == nil {
				defer e.Free()
				if tr != nil {
					e.SetTracer(tr)
				}
				if opts.Tour != 0 {
					e.SetTourVersion(opts.Tour)
				}
				tour, l, secs, err = e.RunContext(ctx, opts.Iterations)
			}
		} else {
			var r *core.RankEngine
			if r, err = core.NewRankEngine(dev, in, opts.Params, 0); err == nil {
				defer r.Free()
				if tr != nil {
					r.SetTracer(tr)
				}
				if opts.Tour != 0 {
					r.SetTourVersion(opts.Tour)
				}
				tour, l, secs, err = r.RunContext(ctx, opts.Iterations)
			}
		}
		if err != nil {
			return nil, err
		}
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: secs, Trace: tr}, nil
	default:
		return nil, fmt.Errorf("antgpu: unknown backend %d", opts.Backend)
	}
}

// solveACS runs the Ant Colony System variant on either backend. Like the
// AS path, only unset (zero-valued) ACS fields are defaulted; the seed
// falls back to opts.Params.Seed when unset.
func solveACS(ctx context.Context, in *Instance, opts SolveOptions) (*Result, error) {
	p := opts.ACS.WithDefaults(opts.Params.Seed)
	switch opts.Backend {
	case BackendCPU:
		c, err := aco.NewACSColony(in, p)
		if err != nil {
			return nil, err
		}
		tr := newTracer(ctx, opts)
		c.Tracer = tr
		c.ResetMeters()
		tour, l, err := c.RunContext(ctx, opts.Iterations)
		if err != nil {
			return nil, err
		}
		cpu := aco.DefaultCPU()
		total := c.ConstructMeter
		total.Add(&c.PheromoneMeter)
		total.Add(&c.ChoiceMeter)
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: cpu.Seconds(&total), Trace: tr}, nil
	case BackendGPU:
		dev := gpuDevice(ctx, opts)
		e, err := core.NewACSEngine(dev, in, p)
		if err != nil {
			return nil, err
		}
		defer e.Free()
		tr := newTracer(ctx, opts)
		if tr != nil {
			e.SetTracer(tr)
		}
		tour, l, secs, err := e.RunContext(ctx, opts.Iterations)
		if err != nil {
			return nil, err
		}
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: secs, Trace: tr}, nil
	case BackendTensor:
		if p.Workers == 0 {
			// Like the seed, the worker knob falls back to the AS-level
			// Params of the enclosing solve options.
			p.Workers = opts.Params.Workers
		}
		e, err := tensor.NewACS(in, p)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		tr := newTracer(ctx, opts)
		e.Tracer = tr
		e.Conv = solveConv(opts, in)
		start := time.Now()
		tour, l, err := e.RunContext(ctx, opts.Iterations)
		if err != nil {
			return nil, err
		}
		return &Result{BestTour: tour, BestLen: l, SimulatedSeconds: time.Since(start).Seconds(), Trace: tr}, nil
	default:
		return nil, fmt.Errorf("antgpu: unknown backend %d", opts.Backend)
	}
}
