package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadRunSelfHosted runs a small self-hosted load: every request must
// complete, the drain wave must drop nothing, and the JSON report must
// carry coherent percentiles.
func TestLoadRunSelfHosted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	var buf bytes.Buffer
	err := run([]string{
		"-clients", "4", "-requests", "12", "-iterations", "3",
		"-workers", "2", "-sse-every", "3", "-drainwave", "4",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, b)
	}
	if rep.Completed != 12 || rep.Failed != 0 {
		t.Errorf("completed=%d failed=%d, want 12/0", rep.Completed, rep.Failed)
	}
	if rep.Clients != 4 || rep.Requests != 12 {
		t.Errorf("report shape %+v", rep)
	}
	if rep.Streamed == 0 {
		t.Error("no requests took the SSE path despite -sse-every 3")
	}
	l := rep.JobLatency
	if l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 || l.Max < l.P99 {
		t.Errorf("incoherent percentiles: %+v", l)
	}
	if rep.Drain == nil {
		t.Fatal("drain summary missing")
	}
	if rep.Drain.InFlight != 4 || rep.Drain.Completed != 4 || rep.Drain.Dropped != 0 {
		t.Errorf("drain summary %+v, want 4 in-flight all completed", rep.Drain)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run([]string{"-clients", "0"}, &buf); err == nil {
		t.Fatal("run accepted zero clients")
	}
}

// TestPacerSchedule pins the coordinated-omission correction: intended
// send times are fixed multiples of 1/rate from the schedule start, and a
// request that goes out late (every client busy) measures its corrected
// latency from the time it was due, not the time it finally left.
func TestPacerSchedule(t *testing.T) {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	p := newPacer(start, 50) // 20ms interval
	if got := p.intended(0); !got.Equal(start) {
		t.Errorf("intended(0) = %v, want schedule start", got)
	}
	if got, want := p.intended(5), start.Add(100*time.Millisecond); !got.Equal(want) {
		t.Errorf("intended(5) = %v, want %v", got, want)
	}
	// A backlog must not shift later due times: request 7 is due at
	// start+140ms no matter when requests 0..6 actually went out.
	if got, want := p.intended(7), start.Add(140*time.Millisecond); !got.Equal(want) {
		t.Errorf("intended(7) = %v, want %v", got, want)
	}

	// The corrected sample for a request due at t=140ms that only got sent
	// at t=500ms and finished at t=530ms is 390ms — the service latency
	// alone (30ms) is the coordinated-omission-blind legacy value.
	finished := start.Add(530 * time.Millisecond)
	corrected := finished.Sub(p.intended(7))
	if corrected != 390*time.Millisecond {
		t.Errorf("corrected latency = %v, want 390ms", corrected)
	}
}

// TestLoadRunPaced runs a small fixed-rate load and checks the corrected
// column appears and can only be slower than the legacy one.
func TestLoadRunPaced(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	var buf bytes.Buffer
	err := run([]string{
		"-clients", "4", "-requests", "12", "-iterations", "3",
		"-workers", "2", "-drainwave", "0", "-rate", "200",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, b)
	}
	if rep.ScheduledRPS != 200 {
		t.Errorf("scheduled_rps = %v, want 200", rep.ScheduledRPS)
	}
	if rep.CorrectedJobLatency == nil {
		t.Fatal("corrected job latency missing from paced run")
	}
	if rep.CorrectedJobLatency.Max < rep.JobLatency.Max {
		t.Errorf("corrected max %.6fs is below legacy max %.6fs — correction can only add queueing delay",
			rep.CorrectedJobLatency.Max, rep.JobLatency.Max)
	}
}

func TestSummarise(t *testing.T) {
	s := summarise([]float64{3, 1, 2, 4})
	if s.P50 != 2 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summarise = %+v", s)
	}
	if z := summarise(nil); z.P50 != 0 || z.Max != 0 {
		t.Errorf("empty summarise = %+v", z)
	}
}
