package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadRunSelfHosted runs a small self-hosted load: every request must
// complete, the drain wave must drop nothing, and the JSON report must
// carry coherent percentiles.
func TestLoadRunSelfHosted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	var buf bytes.Buffer
	err := run([]string{
		"-clients", "4", "-requests", "12", "-iterations", "3",
		"-workers", "2", "-sse-every", "3", "-drainwave", "4",
		"-json", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, b)
	}
	if rep.Completed != 12 || rep.Failed != 0 {
		t.Errorf("completed=%d failed=%d, want 12/0", rep.Completed, rep.Failed)
	}
	if rep.Clients != 4 || rep.Requests != 12 {
		t.Errorf("report shape %+v", rep)
	}
	if rep.Streamed == 0 {
		t.Error("no requests took the SSE path despite -sse-every 3")
	}
	l := rep.JobLatency
	if l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 || l.Max < l.P99 {
		t.Errorf("incoherent percentiles: %+v", l)
	}
	if rep.Drain == nil {
		t.Fatal("drain summary missing")
	}
	if rep.Drain.InFlight != 4 || rep.Drain.Completed != 4 || rep.Drain.Dropped != 0 {
		t.Errorf("drain summary %+v, want 4 in-flight all completed", rep.Drain)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run([]string{"-clients", "0"}, &buf); err == nil {
		t.Fatal("run accepted zero clients")
	}
}

func TestSummarise(t *testing.T) {
	s := summarise([]float64{3, 1, 2, 4})
	if s.P50 != 2 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summarise = %+v", s)
	}
	if z := summarise(nil); z.P50 != 0 || z.Max != 0 {
		t.Errorf("empty summarise = %+v", z)
	}
}
