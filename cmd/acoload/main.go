// Command acoload is the load generator for the antgpud solve service. It
// drives many concurrent clients through the full submit→poll/stream→
// result cycle, measures end-to-end job latency percentiles, and — when it
// hosts the service itself — verifies that a graceful drain completes
// every in-flight job.
//
// Usage:
//
//	acoload                                    # self-hosted service, defaults
//	acoload -clients 32 -requests 500          # the acceptance workload
//	acoload -addr 127.0.0.1:8080 -requests 200 # against a running antgpud
//	acoload -json BENCH_service.json           # write the benchmark report
//
// Every Nth request follows the job over the SSE event stream instead of
// polling, so the stream path is exercised under load too. 429 responses
// (admission control or rate limits) are retried with backoff and counted,
// not treated as failures. The drain phase — self-hosted mode only, since
// a remote antgpud drains on SIGTERM — submits a final wave, drains the
// service, and reports how many of those in-flight jobs completed versus
// dropped; the acceptance bar is zero dropped.
//
// With -rate the harness switches from closed-loop to a fixed-rate
// open-loop schedule: request i is due at start + i/rate, a client sleeps
// until then if it is early, and the corrected job latency is measured
// from that intended send time rather than the actual one. A closed-loop
// harness under-reports tail latency by coordinated omission — when every
// client is stuck inside a slow request, the load it would have offered is
// silently omitted and the delay those requests would have seen never
// enters the histogram. The legacy columns (measured from actual send) are
// kept alongside for comparison with earlier BENCH_service.json files.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"antgpu"
	"antgpu/internal/metrics"
	"antgpu/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acoload:", err)
		os.Exit(1)
	}
}

// report is the BENCH_service.json schema.
type report struct {
	Benchmark     string  `json:"benchmark"` // always "service"
	Instance      string  `json:"instance"`
	Iterations    int     `json:"iterations"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	Failed        int     `json:"failed"`
	Rejected429   int64   `json:"rejected_429"`
	Streamed      int64   `json:"streamed"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// ScheduledRPS is the -rate open-loop schedule; zero means the legacy
	// closed-loop mode, where CorrectedJobLatency is absent.
	ScheduledRPS float64 `json:"scheduled_rps,omitempty"`
	// JobLatency and SubmitLatency are measured from the actual send — the
	// legacy columns, subject to coordinated omission under overload.
	JobLatency    latencySum `json:"job_latency_seconds"`
	SubmitLatency latencySum `json:"submit_latency_seconds"`
	// CorrectedJobLatency is measured from each request's intended send
	// time on the fixed-rate schedule — the coordinated-omission-corrected
	// view of the same jobs.
	CorrectedJobLatency *latencySum   `json:"corrected_job_latency_seconds,omitempty"`
	Drain               *drainSummary `json:"drain,omitempty"`
}

type latencySum struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type drainSummary struct {
	InFlight  int     `json:"inflight"`
	Completed int     `json:"completed"`
	Dropped   int     `json:"dropped"`
	Seconds   float64 `json:"seconds"`
}

func run(args []string, stdout io.Writer) error {
	fs := newFlags()
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	f := fs
	if *f.clients < 1 || *f.requests < 1 {
		return fmt.Errorf("-clients and -requests must be positive")
	}

	base := "http://" + *f.addr
	var svc *service.Service
	if *f.addr == "" {
		// Self-hosted: boot the full antgpud stack in-process so the drain
		// phase can be driven and verified.
		reg := antgpu.NewMetrics()
		pool := antgpu.NewPool(antgpu.PoolOptions{Workers: *f.workers, Metrics: reg})
		// Flight recorder without a stream: the harness verifies every job's
		// /v1/jobs/{id}/log carries its request ID, without the log volume
		// of a full stream under load.
		lg := antgpu.NewLogger(nil, antgpu.LoggerOptions{Flight: antgpu.NewFlightRecorder(0)})
		svc = service.New(service.Options{
			Pool:          pool,
			Metrics:       reg,
			MaxQueueDepth: *f.maxQueue,
			Logger:        lg,
		})
		srv, err := metrics.ServeHandler("127.0.0.1:0", svc.Handler())
		if err != nil {
			return err
		}
		defer srv.Close()
		base = "http://" + srv.Addr()
		fmt.Fprintf(stdout, "acoload: self-hosted service on %s (workers=%d maxqueue=%d)\n",
			base, pool.Workers(), svc.MaxQueueDepth())
	}

	rep := report{
		Benchmark:  "service",
		Instance:   *f.bench,
		Iterations: *f.iters,
		Clients:    *f.clients,
		Requests:   *f.requests,
	}
	body := fmt.Sprintf(`{"benchmark":%q,"iterations":%d}`, *f.bench, *f.iters)

	// The measured phase: clients pull request indices off a shared counter
	// until the budget is spent. With -rate, each index carries an intended
	// send time on the fixed-rate schedule; a client that falls behind does
	// not sleep, and the corrected latency keeps counting from the time the
	// request should have been sent.
	var (
		next     atomic.Int64
		rejected atomic.Int64
		streamed atomic.Int64
		mu       sync.Mutex
		jobLats  []float64
		subLats  []float64
		corLats  []float64
		failures []string
	)
	start := time.Now()
	var pc *pacer
	if *f.rate > 0 {
		pc = newPacer(start, *f.rate)
	}
	var wg sync.WaitGroup
	for c := 0; c < *f.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &client{
				base:     base,
				id:       fmt.Sprintf("acoload-%d", c),
				http:     &http.Client{Timeout: 2 * time.Minute},
				rej429:   &rejected,
				checkLog: svc != nil,
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(*f.requests) {
					return
				}
				var intended time.Time
				if pc != nil {
					intended = pc.intended(i)
					if d := time.Until(intended); d > 0 {
						time.Sleep(d)
					}
				}
				useSSE := *f.sseEvery > 0 && (i+1)%int64(*f.sseEvery) == 0
				jobLat, subLat, err := cl.solve(body, useSSE)
				mu.Lock()
				if err != nil {
					failures = append(failures, err.Error())
				} else {
					jobLats = append(jobLats, jobLat.Seconds())
					subLats = append(subLats, subLat.Seconds())
					if pc != nil {
						corLats = append(corLats, time.Since(intended).Seconds())
					}
				}
				mu.Unlock()
				if err == nil && useSSE {
					streamed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()
	rep.Completed = len(jobLats)
	rep.Failed = len(failures)
	rep.Rejected429 = rejected.Load()
	rep.Streamed = streamed.Load()
	if rep.WallSeconds > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / rep.WallSeconds
	}
	rep.JobLatency = summarise(jobLats)
	rep.SubmitLatency = summarise(subLats)
	if pc != nil {
		rep.ScheduledRPS = *f.rate
		cs := summarise(corLats)
		rep.CorrectedJobLatency = &cs
	}
	for i, msg := range failures {
		if i == 5 {
			fmt.Fprintf(stdout, "acoload: ... and %d more failures\n", len(failures)-5)
			break
		}
		fmt.Fprintf(stdout, "acoload: request failed: %s\n", msg)
	}

	// Drain phase: submit one last wave, drain, and count survivors.
	if svc != nil && *f.drainWave > 0 {
		ds, err := drainPhase(svc, base, body, *f.drainWave)
		if err != nil {
			return err
		}
		rep.Drain = ds
	}

	fmt.Fprintf(stdout,
		"acoload: %d/%d requests ok in %.2fs (%.1f req/s), %d rejected-then-retried, %d streamed\n",
		rep.Completed, rep.Requests, rep.WallSeconds, rep.ThroughputRPS, rep.Rejected429, rep.Streamed)
	fmt.Fprintf(stdout, "acoload: job latency p50=%.4fs p95=%.4fs p99=%.4fs max=%.4fs\n",
		rep.JobLatency.P50, rep.JobLatency.P95, rep.JobLatency.P99, rep.JobLatency.Max)
	if rep.CorrectedJobLatency != nil {
		l := rep.CorrectedJobLatency
		fmt.Fprintf(stdout, "acoload: corrected (from intended send at %.1f req/s) p50=%.4fs p95=%.4fs p99=%.4fs max=%.4fs\n",
			rep.ScheduledRPS, l.P50, l.P95, l.P99, l.Max)
	}
	if rep.Drain != nil {
		fmt.Fprintf(stdout, "acoload: drain completed %d/%d in-flight jobs, %d dropped\n",
			rep.Drain.Completed, rep.Drain.InFlight, rep.Drain.Dropped)
	}

	if *f.jsonOut != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if err := os.WriteFile(*f.jsonOut, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "acoload: wrote %s\n", *f.jsonOut)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d requests failed", rep.Failed)
	}
	if rep.Drain != nil && rep.Drain.Dropped > 0 {
		return fmt.Errorf("drain dropped %d in-flight jobs", rep.Drain.Dropped)
	}
	return nil
}

type flags struct {
	fs        *flag.FlagSet
	addr      *string
	clients   *int
	requests  *int
	bench     *string
	iters     *int
	workers   *int
	maxQueue  *int
	sseEvery  *int
	drainWave *int
	rate      *float64
	jsonOut   *string
}

func newFlags() *flags {
	fs := flag.NewFlagSet("acoload", flag.ContinueOnError)
	return &flags{
		fs:       fs,
		addr:     fs.String("addr", "", "antgpud address to load (empty = self-host the service in-process)"),
		clients:  fs.Int("clients", 32, "concurrent clients"),
		requests: fs.Int("requests", 500, "total requests across all clients"),
		bench:    fs.String("benchmark", "att48", "benchmark instance each request solves"),
		iters:    fs.Int("iterations", 5, "iterations per solve"),
		workers:  fs.Int("workers", 0, "solve workers in self-hosted mode (0 = GOMAXPROCS)"),
		maxQueue: fs.Int("maxqueue", -1, "admission depth in self-hosted mode (-1 = unbounded)"),
		sseEvery: fs.Int("sse-every", 4, "follow every Nth request over SSE instead of polling (0 = never)"),
		drainWave: fs.Int("drainwave", 16, "in-flight jobs submitted before the graceful-drain check "+
			"(self-hosted mode; 0 = skip)"),
		rate: fs.Float64("rate", 0, "offered load in requests/second on a fixed open-loop schedule; "+
			"latency is additionally measured from each request's intended send time, correcting "+
			"for coordinated omission (0 = legacy closed-loop)"),
		jsonOut: fs.String("json", "", "write the benchmark report to this file (e.g. BENCH_service.json)"),
	}
}

// pacer maps request indices to their intended send times on a fixed-rate
// open-loop schedule: request i is due at start + i/rate. Latency measured
// from the intended time instead of the actual send corrects for
// coordinated omission — in a closed-loop harness a slow request silently
// suppresses the requests that were due while every client was blocked,
// so exactly the intervals that should dominate the tail never produce a
// sample.
type pacer struct {
	start    time.Time
	interval time.Duration
}

func newPacer(start time.Time, rps float64) *pacer {
	return &pacer{start: start, interval: time.Duration(float64(time.Second) / rps)}
}

// intended returns the schedule's send time for the i-th request
// (0-based). The schedule is fixed at start: a backlog never shifts the
// due times of later requests.
func (p *pacer) intended(i int64) time.Time {
	return p.start.Add(time.Duration(i) * p.interval)
}

// client drives one load-generation client identity.
type client struct {
	base   string
	id     string
	http   *http.Client
	rej429 *atomic.Int64
	// checkLog additionally fetches each completed job's flight-recorder
	// log and verifies every line carries the request's correlation ID —
	// self-hosted mode only, where the flight recorder is known to be on.
	checkLog bool
	seq      atomic.Int64
}

// solve runs one request to a terminal state and returns (job latency,
// submit latency). Job latency spans first submit attempt to observed
// terminal state, so retry backoff after 429s is counted against the
// service — that is the latency a real client experiences. Every request
// sends a unique X-Request-ID and fails if the service does not echo it
// back; with checkLog the job's log lines must all carry it too.
func (c *client) solve(body string, useSSE bool) (jobLat, subLat time.Duration, err error) {
	start := time.Now()
	rid := fmt.Sprintf("%s-r%d", c.id, c.seq.Add(1))
	id, subLat, err := c.submit(body, rid)
	if err != nil {
		return 0, 0, err
	}
	var state string
	if useSSE {
		state, err = c.follow(id)
	} else {
		state, err = c.poll(id)
	}
	if err != nil {
		return 0, 0, err
	}
	if state != "done" {
		return 0, 0, fmt.Errorf("job %s ended %q", id, state)
	}
	if c.checkLog {
		if err := c.verifyJobLog(id, rid); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start), subLat, nil
}

// submit POSTs the solve with the request ID, retrying 429s with backoff,
// and returns the job ID and the accepted POST's round-trip time. The 202's
// X-Request-ID header and job status must both echo the sent ID.
func (c *client) submit(body, rid string) (string, time.Duration, error) {
	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/solve", strings.NewReader(body))
		if err != nil {
			return "", 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", c.id)
		req.Header.Set("X-Request-ID", rid)
		resp, err := c.http.Do(req)
		if err != nil {
			return "", 0, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		rtt := time.Since(t0)
		switch resp.StatusCode {
		case http.StatusAccepted:
			if got := resp.Header.Get("X-Request-ID"); got != rid {
				return "", 0, fmt.Errorf("X-Request-ID echoed as %q, sent %q", got, rid)
			}
			var st struct {
				ID        string `json:"id"`
				RequestID string `json:"request_id"`
			}
			if err := json.Unmarshal(b, &st); err != nil || st.ID == "" {
				return "", 0, fmt.Errorf("submit response %q: %v", b, err)
			}
			if st.RequestID != rid {
				return "", 0, fmt.Errorf("job %s request_id %q, sent %q", st.ID, st.RequestID, rid)
			}
			return st.ID, rtt, nil
		case http.StatusTooManyRequests:
			c.rej429.Add(1)
			if attempt > 200 {
				return "", 0, fmt.Errorf("still overloaded after %d retries", attempt)
			}
			time.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", 0, fmt.Errorf("submit status %d: %s", resp.StatusCode, b)
		}
	}
}

// verifyJobLog asserts the completed job's flight-recorder log is non-empty
// and that every line carries the request ID the job was submitted under.
func (c *client) verifyJobLog(id, rid string) error {
	resp, err := c.http.Get(c.base + "/v1/jobs/" + id + "/log")
	if err != nil {
		return fmt.Errorf("job %s log: %w", id, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("job %s log status %d: %s", id, resp.StatusCode, b)
	}
	lines := 0
	for _, line := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		lines++
		if !strings.Contains(line, `"request_id":"`+rid+`"`) {
			return fmt.Errorf("job %s log line lacks request ID %q: %s", id, rid, line)
		}
	}
	if lines == 0 {
		return fmt.Errorf("job %s log is empty", id)
	}
	return nil
}

// poll GETs the job until it reaches a terminal state.
func (c *client) poll(id string) (string, error) {
	for {
		resp, err := c.http.Get(c.base + "/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("poll status %d: %s", resp.StatusCode, b)
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return "", fmt.Errorf("poll body %q: %v", b, err)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st.State, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// follow consumes the job's SSE stream until the terminal status event and
// returns the final state.
func (c *client) follow(id string) (string, error) {
	resp, err := c.http.Get(c.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("events status %d: %s", resp.StatusCode, b)
	}
	var evType, state string
	iterations := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			evType = v
			if evType == "iteration" {
				iterations++
			}
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && evType == "status" {
			var st struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				return "", fmt.Errorf("status event %q: %v", data, err)
			}
			state = st.State
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("stream read: %v", err)
	}
	if state == "" {
		return "", fmt.Errorf("stream ended without a status event (%d iterations seen)", iterations)
	}
	return state, nil
}

// drainPhase submits a wave of jobs, gracefully drains the service, and
// verifies every in-flight job completed.
func drainPhase(svc *service.Service, base, body string, wave int) (*drainSummary, error) {
	cl := &client{base: base, id: "acoload-drain", http: &http.Client{Timeout: 2 * time.Minute}, rej429: new(atomic.Int64)}
	ids := make([]string, 0, wave)
	for i := 0; i < wave; i++ {
		id, _, err := cl.submit(body, fmt.Sprintf("acoload-drain-r%d", i))
		if err != nil {
			return nil, fmt.Errorf("drain wave submit %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	ds := &drainSummary{InFlight: wave, Seconds: time.Since(t0).Seconds()}
	for _, id := range ids {
		st, err := svc.Job(id)
		if err != nil {
			return nil, err
		}
		if st.State == service.StateDone {
			ds.Completed++
		} else {
			ds.Dropped++
		}
	}
	return ds, nil
}

// summarise computes the latency summary of a sample set.
func summarise(xs []float64) latencySum {
	if len(xs) == 0 {
		return latencySum{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pct := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return latencySum{
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}
