// Command antgpud is the long-running solve server: an HTTP/JSON front end
// over the shared solve pool, with per-iteration convergence streamed as
// Server-Sent Events and the metrics exposition co-hosted on the same
// listener.
//
// Usage:
//
//	antgpud                                  # listen on 127.0.0.1:8080
//	antgpud -addr :9090 -workers 8           # public, bounded concurrency
//	antgpud -maxqueue 64 -rate 10 -burst 20  # admission + rate limits
//
// Endpoints:
//
//	POST   /v1/solve            submit (benchmark or TSPLIB upload)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        poll status/result
//	GET    /v1/jobs/{id}/events per-iteration convergence over SSE
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             readiness (503 while draining)
//	GET    /metrics             Prometheus exposition
//	GET    /debug/antgpu        JSON metrics snapshot
//
// On SIGINT/SIGTERM the server drains gracefully: admission stops (429/503
// to new submits), in-flight jobs run to completion for up to
// -drain-timeout, then any stragglers are cancelled and the listener shut
// down.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"antgpu"
	"antgpu/internal/metrics"
	"antgpu/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "antgpud:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("antgpud", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 for ephemeral)")
		workers  = fs.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		maxQueue = fs.Int("maxqueue", 0, "admitted jobs waiting for a worker before 429s "+
			"(0 = 4x workers, negative = unbounded)")
		rate         = fs.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst        = fs.Int("burst", 0, "per-client burst size (0 = derived from -rate)")
		maxIters     = fs.Int("maxiters", 0, "largest accepted per-job iteration count (0 = 100000)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"how long a shutdown signal waits for in-flight jobs before cancelling them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := antgpu.NewMetrics()
	pool := antgpu.NewPool(antgpu.PoolOptions{Workers: *workers, Metrics: reg})
	svc := service.New(service.Options{
		Pool:          pool,
		Metrics:       reg,
		MaxQueueDepth: *maxQueue,
		RatePerSec:    *rate,
		Burst:         *burst,
		MaxIterations: *maxIters,
	})

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mh := antgpu.MetricsHandler(reg)
	mux.Handle("/metrics", mh)
	mux.Handle("/debug/antgpu", mh)

	srv, err := metrics.ServeHandler(*addr, mux)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "antgpud listening on http://%s (workers=%d maxqueue=%d)\n",
		srv.Addr(), pool.Workers(), svc.MaxQueueDepth())

	<-ctx.Done()
	fmt.Fprintln(stdout, "antgpud draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		n := svc.CancelAll()
		fmt.Fprintf(stdout, "antgpud drain timed out after %s, cancelled %d in-flight jobs\n",
			*drainTimeout, n)
		// The cancelled jobs unwind quickly; give them a moment so the final
		// wg state is clean before the listener goes away.
		fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer fcancel()
		_ = svc.Drain(fctx)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "antgpud stopped")
	return nil
}
