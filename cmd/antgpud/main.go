// Command antgpud is the long-running solve server: an HTTP/JSON front end
// over the shared solve pool, with per-iteration convergence streamed as
// Server-Sent Events and the metrics exposition co-hosted on the same
// listener.
//
// Usage:
//
//	antgpud                                  # listen on 127.0.0.1:8080
//	antgpud -addr :9090 -workers 8           # public, bounded concurrency
//	antgpud -maxqueue 64 -rate 10 -burst 20  # admission + rate limits
//	antgpud -loglevel debug -flight 512      # verbose stream, bigger ring
//
// Endpoints:
//
//	POST   /v1/solve            submit (benchmark or TSPLIB upload)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        poll status/result
//	GET    /v1/jobs/{id}/events per-iteration convergence over SSE
//	GET    /v1/jobs/{id}/log    the job's flight-recorder events (NDJSON)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             readiness (503 while draining)
//	GET    /metrics             Prometheus exposition
//	GET    /debug/antgpu        JSON metrics snapshot
//	GET    /debug/flight        live flight-recorder tail (?job=<id> filters)
//	GET    /debug/pprof/...     Go profiling endpoints (only with -pprof)
//
// Every request carries a correlation ID: the X-Request-ID header when the
// client set one, otherwise generated, always echoed back. Every log line a
// job produces — admission through kernel launches — carries that ID, so
// one grep follows a bad request across the whole stack (see README
// "Debugging a bad request").
//
// On SIGINT/SIGTERM the server drains gracefully: admission stops (429/503
// to new submits), in-flight jobs run to completion for up to
// -drain-timeout, then any stragglers are cancelled and the listener shut
// down. SIGQUIT dumps the flight recorder to stderr and keeps running; a
// panic dumps it too before the process dies.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"antgpu"
	"antgpu/internal/metrics"
	"antgpu/internal/obslog"
	"antgpu/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "antgpud:", err)
		os.Exit(1)
	}
}

// buildLogger resolves the -log/-loglevel/-flight flags into a logger (nil
// when both the stream and the flight recorder are off) and a close func
// for a log file.
func buildLogger(logDest, level string, flight int) (*antgpu.Logger, func(), error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, nil, fmt.Errorf("-loglevel %q: %w", level, err)
	}
	var w io.Writer
	cleanup := func() {}
	switch logDest {
	case "stderr":
		w = os.Stderr
	case "off":
		w = nil
	default:
		f, err := os.OpenFile(logDest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("-log %q: %w", logDest, err)
		}
		w = f
		cleanup = func() { f.Close() }
	}
	var fr *antgpu.FlightRecorder
	if flight > 0 {
		fr = antgpu.NewFlightRecorder(flight)
	}
	if w == nil && fr == nil {
		return nil, cleanup, nil
	}
	return antgpu.NewLogger(w, antgpu.LoggerOptions{Level: lvl, Flight: fr}), cleanup, nil
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("antgpud", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 for ephemeral)")
		workers  = fs.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		maxQueue = fs.Int("maxqueue", 0, "admitted jobs waiting for a worker before 429s "+
			"(0 = 4x workers, negative = unbounded)")
		rate         = fs.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst        = fs.Int("burst", 0, "per-client burst size (0 = derived from -rate)")
		maxIters     = fs.Int("maxiters", 0, "largest accepted per-job iteration count (0 = 100000)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second,
			"how long a shutdown signal waits for in-flight jobs before cancelling them")
		logDest  = fs.String("log", "stderr", "structured log stream: stderr, off, or a file path")
		logLevel = fs.String("loglevel", "info", "minimum stream level (debug, info, warn, error)")
		flight   = fs.Int("flight", obslog.DefaultFlightSize,
			"flight-recorder ring size per job (0 disables the recorder)")
		pprofOn = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	lg, logClose, err := buildLogger(*logDest, *logLevel, *flight)
	if err != nil {
		return err
	}
	defer logClose()
	// A panic anywhere in the serving goroutines tears the process down;
	// make the flight recorder's last events part of the post-mortem.
	defer func() {
		if r := recover(); r != nil {
			lg.CrashDump(fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	reg := antgpu.NewMetrics()
	pool := antgpu.NewPool(antgpu.PoolOptions{Workers: *workers, Metrics: reg, Logger: lg})
	svc := service.New(service.Options{
		Pool:          pool,
		Metrics:       reg,
		MaxQueueDepth: *maxQueue,
		RatePerSec:    *rate,
		Burst:         *burst,
		MaxIterations: *maxIters,
		Logger:        lg,
	})

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mh := antgpu.MetricsHandler(reg)
	mux.Handle("/metrics", mh)
	mux.Handle("/debug/antgpu", mh)
	if fr := lg.Flight(); fr != nil {
		mux.Handle("/debug/flight", fr.Handler())
	}
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// A bind failure surfaces synchronously here; an accept loop dying later
	// (listener closed by the OS, fd exhaustion) lands on srvErr so the
	// process reports it and exits non-zero instead of serving nothing
	// silently.
	srvErr := make(chan error, 1)
	srv, err := metrics.ServeHandlerNotify(*addr, mux, func(err error) {
		select {
		case srvErr <- err:
		default:
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "antgpud listening on http://%s (workers=%d maxqueue=%d)\n",
		srv.Addr(), pool.Workers(), svc.MaxQueueDepth())

	// SIGQUIT: dump the flight recorder and keep serving — the operator's
	// "what is this server doing right now" probe.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			lg.CrashDump("SIGQUIT")
		}
	}()

	select {
	case err := <-srvErr:
		lg.CrashDump("listener failure: " + err.Error())
		return fmt.Errorf("listener failed: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "antgpud draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		n := svc.CancelAll()
		fmt.Fprintf(stdout, "antgpud drain timed out after %s, cancelled %d in-flight jobs\n",
			*drainTimeout, n)
		// The cancelled jobs unwind quickly; give them a moment so the final
		// wg state is clean before the listener goes away.
		fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer fcancel()
		_ = svc.Drain(fctx)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "antgpud stopped")
	return nil
}
