package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// readFile returns the file's contents as a string.
func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing run's output
// while the server runs in a background goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// TestServerLifecycle boots antgpud on an ephemeral port, solves one job
// over HTTP, scrapes the co-hosted metrics, and shuts down gracefully.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out)
	}()

	// Wait for the listening line.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d: %s", path, resp.StatusCode, want, b)
		}
		return b
	}

	get("/healthz", http.StatusOK)

	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"benchmark":"att48","iterations":5,"params":{"seed":1}}`))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}

	for i := 0; ; i++ {
		b := get("/v1/jobs/"+st.ID, http.StatusOK)
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("poll body %q: %v", b, err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" || i > 2000 {
			t.Fatalf("job ended %s: %s", st.State, b)
		}
		time.Sleep(5 * time.Millisecond)
	}

	scrape := string(get("/metrics", http.StatusOK))
	for _, want := range []string{
		`antgpu_service_requests_total{outcome="accepted"} 1`,
		"antgpu_pool_queue_depth",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics missing %q:\n%s", want, scrape)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if outStr := out.String(); !strings.Contains(outStr, "antgpud stopped") {
		t.Errorf("shutdown log missing:\n%s", outStr)
	}
}

func TestBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-nope"}, &out); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:x"}, &out); err == nil {
		t.Fatal("run accepted an unbindable address")
	}
	if err := run(context.Background(), []string{"-loglevel", "loud"}, &out); err == nil {
		t.Fatal("run accepted an unknown log level")
	}
	if err := run(context.Background(), []string{"-log", "/nonexistent-dir/antgpud.log"}, &out); err == nil {
		t.Fatal("run accepted an unwritable log path")
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}

// startServer boots antgpud with the given extra flags and returns its base
// URL plus the cancel/done pair for shutdown.
func startServer(t *testing.T, extra ...string) (string, context.CancelFunc, chan error, *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	go func() { done <- run(ctx, args, out) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1], cancel, done, out
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func stopServer(t *testing.T, cancel context.CancelFunc, done chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestLoggingAndFlightEndpoints: with a file log stream and the flight
// recorder on, a solved job's request ID appears on the response header, in
// the stream, on /debug/flight and on /v1/jobs/{id}/log.
func TestLoggingAndFlightEndpoints(t *testing.T) {
	logPath := t.TempDir() + "/antgpud.log"
	base, cancel, done, _ := startServer(t, "-log", logPath, "-loglevel", "debug")
	defer cancel()

	const rid = "req-antgpud-test"
	req, _ := http.NewRequest("POST", base+"/v1/solve",
		strings.NewReader(`{"benchmark":"att48","iterations":3,"backend":"gpu","params":{"seed":1}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Errorf("X-Request-ID echoed as %q, want %q", got, rid)
	}
	var st struct {
		ID        string `json:"id"`
		RequestID string `json:"request_id"`
		State     string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}
	if st.RequestID != rid {
		t.Errorf("job status request_id = %q, want %q", st.RequestID, rid)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		code, b := get("/v1/jobs/" + st.ID)
		if code != http.StatusOK {
			t.Fatalf("poll status %d: %s", code, b)
		}
		if err := json.Unmarshal([]byte(b), &st); err != nil {
			t.Fatalf("poll body %q: %v", b, err)
		}
		if st.State == "failed" || st.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("job ended %s: %s", st.State, b)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, b := get("/v1/jobs/" + st.ID + "/log"); code != http.StatusOK ||
		!strings.Contains(b, `"request_id":"`+rid+`"`) {
		t.Errorf("/v1/jobs/{id}/log status %d, body:\n%s", code, b)
	}
	if code, b := get("/debug/flight?job=" + st.ID); code != http.StatusOK ||
		!strings.Contains(b, `"request_id":"`+rid+`"`) {
		t.Errorf("/debug/flight status %d, body:\n%s", code, b)
	}
	if code, _ := get("/debug/pprof/cmdline"); code == http.StatusOK {
		t.Error("/debug/pprof served without -pprof")
	}

	stopServer(t, cancel, done)
	logged, err := readFile(logPath)
	if err != nil {
		t.Fatalf("read log file: %v", err)
	}
	if !strings.Contains(logged, `"request_id":"`+rid+`"`) {
		t.Errorf("log file has no line for request %s:\n%s", rid, logged)
	}
	for _, want := range []string{`"msg":"admit"`, `"msg":"dispatch"`, `"msg":"kernel"`, `"msg":"done"`} {
		if !strings.Contains(logged, want) {
			t.Errorf("log file missing %s event", want)
		}
	}
}

// TestPprofFlag: -pprof mounts the profiling endpoints.
func TestPprofFlag(t *testing.T) {
	base, cancel, done, _ := startServer(t, "-pprof", "-log", "off", "-flight", "0")
	defer cancel()
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET /debug/pprof/cmdline: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d with -pprof", resp.StatusCode)
	}
	// Without a flight recorder the debug endpoint is absent.
	resp, err = http.Get(base + "/debug/flight")
	if err != nil {
		t.Fatalf("GET /debug/flight: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("/debug/flight served with -flight 0")
	}
	stopServer(t, cancel, done)
}
