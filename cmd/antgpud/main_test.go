package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing run's output
// while the server runs in a background goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^ ]+)`)

// TestServerLifecycle boots antgpud on an ephemeral port, solves one job
// over HTTP, scrapes the co-hosted metrics, and shuts down gracefully.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out)
	}()

	// Wait for the listening line.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d: %s", path, resp.StatusCode, want, b)
		}
		return b
	}

	get("/healthz", http.StatusOK)

	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"benchmark":"att48","iterations":5,"params":{"seed":1}}`))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}

	for i := 0; ; i++ {
		b := get("/v1/jobs/"+st.ID, http.StatusOK)
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("poll body %q: %v", b, err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" || i > 2000 {
			t.Fatalf("job ended %s: %s", st.State, b)
		}
		time.Sleep(5 * time.Millisecond)
	}

	scrape := string(get("/metrics", http.StatusOK))
	for _, want := range []string{
		`antgpu_service_requests_total{outcome="accepted"} 1`,
		"antgpu_pool_queue_depth",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics missing %q:\n%s", want, scrape)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if outStr := out.String(); !strings.Contains(outStr, "antgpud stopped") {
		t.Errorf("shutdown log missing:\n%s", outStr)
	}
}

func TestBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-nope"}, &out); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:x"}, &out); err == nil {
		t.Fatal("run accepted an unbindable address")
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
