package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSmokeProfileMode(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	var out1 bytes.Buffer
	if err := run([]string{"-profile", "-traceout", traceFile}, &out1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Tesla C1060", "Tesla M2050", "tour-data-v8", "deposit-atomic-shared"} {
		if !bytes.Contains(out1.Bytes(), []byte(want)) {
			t.Fatalf("profile output missing %q:\n%s", want, out1.String())
		}
	}

	raw1, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw1, &parsed); err != nil {
		t.Fatalf("-traceout file is not valid trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace JSON has no events")
	}

	// Determinism: a second run reproduces both streams byte for byte.
	var out2 bytes.Buffer
	if err := run([]string{"-profile", "-traceout", traceFile}, &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("profile runs printed different output")
	}
	raw2, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("profile runs wrote different trace JSON")
	}
}

func TestSmokeTableI(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("Tesla C1060")) {
		t.Fatalf("Table I output missing device row:\n%s", out.String())
	}
}

func TestRunRejectsNoMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("run without any mode should fail")
	}
}

func TestSmokeInject(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-inject", "rate=0.02,seed=5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("IDENTICAL to fault-free")) {
		t.Fatalf("injected sweep did not match the fault-free runs:\n%s", out.String())
	}
	if err := run([]string{"-inject", "nope"}, &out); err == nil {
		t.Fatal("malformed -inject spec should fail")
	}
}

func TestSmokeBatchMode(t *testing.T) {
	jsonFile := filepath.Join(t.TempDir(), "BENCH_batch.json")
	var out bytes.Buffer
	err := run([]string{"-batch", "-seeds", "3", "-iters", "2", "-batchjson", jsonFile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"batch throughput:", "identical results: true", "cache"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("batch output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Requests  int     `json:"requests"`
		Identical bool    `json:"identical"`
		HitRate   float64 `json:"cache_hit_rate"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("-batchjson file is not valid JSON: %v", err)
	}
	if decoded.Requests != 6 || !decoded.Identical {
		t.Fatalf("bad BENCH_batch.json payload: %s", raw)
	}
	if decoded.HitRate <= 0 {
		t.Fatalf("no cache hits recorded: %s", raw)
	}
}

func TestSmokeHostBenchMode(t *testing.T) {
	jsonFile := filepath.Join(t.TempDir(), "BENCH_hostperf.json")
	var out bytes.Buffer
	err := run([]string{"-hostbench", "-hostinstance", "att48", "-hostrepeats", "1",
		"-hostjson", jsonFile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"host performance:", "tour-data", "speedup"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("hostbench output missing %q:\n%s", want, out.String())
		}
	}
	raw, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Instance string `json:"instance"`
		Kernels  []struct {
			Name    string  `json:"name"`
			Speedup float64 `json:"speedup"`
		} `json:"kernels"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("-hostjson file is not valid JSON: %v", err)
	}
	if decoded.Instance != "att48" || len(decoded.Kernels) == 0 {
		t.Fatalf("bad BENCH_hostperf.json payload: %s", raw)
	}
}

func TestSmokeMetricsMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	// One series from each producer layer, plus the recovery counters the
	// fault-injected request exercises.
	for _, want := range []string{
		`antgpu_kernel_launches_total{kernel="`,
		`antgpu_pheromone_entropy{`,
		"antgpu_pool_requests_total",
		"antgpu_recovery_faults_total",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("metrics output missing %q:\n%s", want, out.String())
		}
	}
}
