package main

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"antgpu"
)

// runMetrics is the telemetry self-check mode (-metrics): it runs a small
// instrumented batch exercising all three producer layers — GPU hardware
// counters, convergence statistics and the pool scheduler, plus the
// fault-recovery runtime — lints the resulting Prometheus exposition with
// the vendored promtool-style validator, and prints it. Lint violations
// fail the command, so CI gates on the exposition staying valid.
func runMetrics(stdout io.Writer) error {
	att48, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		return err
	}
	kroC100, err := antgpu.LoadBenchmark("kroC100")
	if err != nil {
		return err
	}

	reg := antgpu.NewMetrics()
	pool := antgpu.NewPool(antgpu.PoolOptions{Workers: 2, Metrics: reg})
	reqs := []antgpu.SolveRequest{
		// GPU solve: kernel hardware counters + convergence gauges.
		{Instance: att48, Options: antgpu.SolveOptions{
			Iterations: 5, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 1},
		}},
		// Faulty GPU solve: recovery counters.
		{Instance: att48, Options: antgpu.SolveOptions{
			Iterations: 5, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 1},
			Faults: &antgpu.FaultPlan{Seed: 19, LaunchRate: 0.05},
		}},
		// CPU solve: convergence gauges from the baseline colony.
		{Instance: kroC100, Options: antgpu.SolveOptions{
			Iterations: 3, Params: antgpu.Params{Seed: 1},
		}},
	}
	rep, err := pool.SolveBatch(context.Background(), reqs)
	if err != nil {
		return err
	}
	for i, it := range rep.Results {
		if it.Err != nil {
			return fmt.Errorf("metrics batch request %d: %w", i, it.Err)
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return err
	}
	if errs := antgpu.LintMetrics(bytes.NewReader(buf.Bytes())); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(stdout, "lint:", e)
		}
		return fmt.Errorf("metrics exposition failed lint with %d violations", len(errs))
	}
	_, err = stdout.Write(buf.Bytes())
	return err
}
