// Command acobench regenerates the tables and figures of Cecilia et al.,
// "Parallelization Strategies for Ant Colony Optimisation on GPUs" (2011),
// on the simulated Tesla C1060 and M2050 devices.
//
// Usage:
//
//	acobench -all                 # every table and figure
//	acobench -table 2             # Table II (tour construction, C1060)
//	acobench -table 3|4           # pheromone update tables
//	acobench -figure 4a|4b|5      # speed-up figures
//	acobench -maxn 700            # drop instances larger than n=700
//	acobench -budget 100000000    # per-launch lane-op sampling budget
//	acobench -csv                 # CSV instead of aligned text
//	acobench -paper               # print the paper's published values too
//	acobench -profile             # per-kernel profile of one AS iteration
//	acobench -inject rate=0.02    # fault-injection demo vs the fault-free run
//	acobench -metrics             # instrumented batch; lint + print the Prometheus exposition
//	acobench -batch -batchjson BENCH_batch.json   # batch-scheduler throughput
//	acobench -hostbench           # host-performance harness: scalar vs warp-vector simulator paths
//	acobench -islands             # island-ensemble sweep incl. degraded-fleet scenarios (BENCH_islands.json)
//	acobench -cpuprofile cpu.pprof -memprofile mem.pprof   # profile the host process
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"antgpu/internal/aco"
	"antgpu/internal/bench"
	"antgpu/internal/core"
	"antgpu/internal/cuda"
	"antgpu/internal/trace"
	"antgpu/internal/tsp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acobench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("acobench", flag.ContinueOnError)
	var (
		table    = fs.String("table", "", "table to regenerate: 1, 2, 3 or 4")
		figure   = fs.String("figure", "", "figure to regenerate: 4a, 4b or 5")
		all      = fs.Bool("all", false, "regenerate every table and figure")
		maxN     = fs.Int("maxn", 0, "drop instances with more than this many cities (0 = keep all)")
		budget   = fs.Int64("budget", 0, "per-launch lane-operation sampling budget (0 = default)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		paper    = fs.Bool("paper", false, "also print the paper's published values")
		ablate   = fs.String("ablate", "", "ablation study: theta, block or nn")
		quality  = fs.Int("quality", 0, "solution-quality table with this many iterations (0 = off)")
		converge = fs.String("converge", "", "convergence series on this instance (e.g. kroC100)")
		profile  = fs.Bool("profile", false, "profile one full AS iteration per device on att48")
		traceOut = fs.String("traceout", "", "with -profile, write the M2050 timeline as Chrome trace JSON")
		inject   = fs.String("inject", "", "fault-injection demo: run the GPU Ant System under this fault spec "+
			"(e.g. rate=0.02,seed=7) and compare against the fault-free run")
		metricsMode = fs.Bool("metrics", false, "run an instrumented batch, lint the Prometheus exposition, and print it "+
			"(non-zero exit on lint violations — the CI telemetry gate)")
		batch       = fs.Bool("batch", false, "batch-scheduler throughput benchmark: concurrent SolveBatch vs sequential solves")
		batchJSON   = fs.String("batchjson", "", "with -batch, also write the result as JSON (the BENCH_batch.json trajectory)")
		workers     = fs.Int("workers", 0, "with -batch, worker goroutines (0 = GOMAXPROCS)")
		seeds       = fs.Int("seeds", 0, "with -batch, independent seeds per instance (0 = default)")
		iters       = fs.Int("iters", 0, "with -batch, AS iterations per solve (0 = default)")
		hostbench   = fs.Bool("hostbench", false, "host-performance harness: scalar vs warp-vector path, ns per simulated lane-op")
		hostJSON    = fs.String("hostjson", "BENCH_hostperf.json", "with -hostbench, write the result as JSON to this path (empty = skip)")
		hostInst    = fs.String("hostinstance", "", "with -hostbench, instance to benchmark on (empty = default)")
		hostReps    = fs.Int("hostrepeats", 0, "with -hostbench, timed launches per kernel per path (0 = default)")
		islands     = fs.Bool("islands", false, "island-ensemble benchmark: quality and wall-clock vs island count and fault pressure, incl. a kill-island-at-50% scenario")
		islandsJSON = fs.String("islandsjson", "BENCH_islands.json", "with -islands, write the result as JSON to this path (empty = skip)")
		islandIters = fs.Int("islanditers", 0, "with -islands, iterations per island (0 = default)")
		islandRate  = fs.Float64("islandrate", 0, "with -islands, per-launch fault rate of the faulty scenario (0 = default)")
		tensorBench = fs.Bool("tensor", false, "tensor-engine benchmark: ns/ant-step and end-to-end throughput vs the CPU colony and the warp-vector simulator")
		tensorJSON  = fs.String("tensorjson", "BENCH_tensor.json", "with -tensor, write the result as JSON to this path (empty = skip)")
		tensorIters = fs.Int("tensoriters", 0, "with -tensor, AS iterations per engine (0 = default)")
		tensorGate  = fs.String("tensorgate", "", "run a CPU-vs-tensor smoke sweep and fail if the tensor speedup regresses >20% against this baseline JSON (the CI perf gate)")
		procs       = fs.Int("procs", 0, "set GOMAXPROCS for the whole run (0 = leave the runtime default) — pins the scheduler parallelism benchmark rows report")
		cpuProf     = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf     = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acobench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "acobench: memprofile:", err)
			}
		}()
	}

	if *profile {
		return runProfile(stdout, *traceOut)
	}
	if *inject != "" {
		return runInject(stdout, *inject)
	}
	if *metricsMode {
		return runMetrics(stdout)
	}
	if *batch {
		return runBatch(stdout, *batchJSON, *workers, *seeds, *iters)
	}
	if *hostbench {
		return runHostBench(stdout, *hostJSON, *hostInst, *hostReps)
	}
	if *islands {
		return runIslands(stdout, *islandsJSON, *islandIters, *islandRate)
	}
	if *tensorBench {
		return runTensorBench(stdout, *tensorJSON, *tensorIters)
	}
	if *tensorGate != "" {
		return runTensorGate(stdout, *tensorGate, *tensorIters)
	}
	if !*all && *table == "" && *figure == "" && *ablate == "" && *quality == 0 && *converge == "" {
		fs.Usage()
		return fmt.Errorf("no mode selected")
	}

	cfg := bench.Config{MaxN: *maxN, SampleBudget: *budget}
	c1060 := cuda.TeslaC1060()
	m2050 := cuda.TeslaM2050()
	both := []*cuda.Device{c1060, m2050}

	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		if *csv {
			if err := t.WriteCSV(stdout); err != nil {
				return err
			}
		} else {
			t.Format(stdout)
		}
		fmt.Fprintln(stdout)
		return nil
	}

	emitPaper := func(title string, instances []string, rows map[string][]float64, order []string) {
		if !*paper {
			return
		}
		t := &bench.Table{Title: title, Unit: "milliseconds, paper's hardware", Instances: instances}
		for _, name := range order {
			if vals, ok := rows[name]; ok {
				t.AddRow(name, vals)
			}
		}
		t.Format(stdout)
		fmt.Fprintln(stdout)
	}

	tableOrder := []string{
		"1. Baseline Version", "2. Choice Kernel", "3. Without CURAND", "4. NNList",
		"5. NNList + Shared Memory", "6. NNList + Shared&Texture Memory",
		"7. Increasing Data Parallelism", "8. Data Parallelism + Texture Memory",
		"Total speed-up attained",
	}
	pherOrder := []string{
		"1. Atomic Ins. + Shared Memory", "2. Atomic Ins.",
		"3. Instruction & Thread Reduction", "4. Scatter to Gather + Tilling",
		"5. Scatter to Gather", "Total slow-down incurred", "Total slow-downs attained",
	}

	want := func(name string) bool { return *all || *table == name }
	wantFig := func(name string) bool { return *all || *figure == name }

	if want("1") {
		fmt.Fprintln(stdout, "Table I: CUDA and hardware features (device presets)")
		for _, d := range both {
			fmt.Fprintf(stdout, "  %s | SPs/SM %d | SMs %d | total SPs %d | clock %.0f MHz | "+
				"threads/block %d | threads/SM %d | shared %d KB | mem %.0f GB | BW %.0f GB/s\n",
				d.Name, d.CoresPerSM, d.SMs, d.TotalCores(), d.ClockHz/1e6,
				d.MaxThreadsPerBlock, d.MaxThreadsPerSM, d.SharedMemPerSM/1024,
				float64(d.GlobalMemBytes)/(1<<30), d.BandwidthBytesPS/1e9)
		}
		fmt.Fprintln(stdout)
	}
	if want("2") {
		if err := emit(bench.TableII(c1060, cfg)); err != nil {
			return err
		}
		emitPaper("Paper Table II (Tesla C1060)", bench.PaperInstances, bench.PaperTableII, tableOrder)
	}
	if want("3") {
		pcfg := cfg
		if pcfg.Instances == nil {
			pcfg.Instances = bench.PaperPherInstances
		}
		if err := emit(bench.TablePheromone(c1060, pcfg)); err != nil {
			return err
		}
		emitPaper("Paper Table III (Tesla C1060)", bench.PaperPherInstances, bench.PaperTableIII, pherOrder)
	}
	if want("4") {
		pcfg := cfg
		if pcfg.Instances == nil {
			pcfg.Instances = bench.PaperPherInstances
		}
		if err := emit(bench.TablePheromone(m2050, pcfg)); err != nil {
			return err
		}
		emitPaper("Paper Table IV (Tesla M2050)", bench.PaperPherInstances, bench.PaperTableIV, pherOrder)
	}
	if wantFig("4a") {
		if err := emit(bench.Figure4a(both, cfg)); err != nil {
			return err
		}
		if *paper {
			fmt.Fprintf(stdout, "Paper: peaks ~%.2fx (C1060) / ~%.2fx (M2050) near pr1002, <1x for the smallest instances\n\n",
				bench.PaperFig4aPeak["Tesla C1060"], bench.PaperFig4aPeak["Tesla M2050"])
		}
	}
	if wantFig("4b") {
		if err := emit(bench.Figure4b(both, cfg)); err != nil {
			return err
		}
		if *paper {
			fmt.Fprintf(stdout, "Paper: up to ~%.0fx (C1060) / ~%.0fx (M2050)\n\n",
				bench.PaperFig4bPeak["Tesla C1060"], bench.PaperFig4bPeak["Tesla M2050"])
		}
	}
	if *converge != "" {
		if err := emit(bench.ConvergenceSeries(m2050, *converge, nil)); err != nil {
			return err
		}
	}

	if *quality > 0 {
		qcfg := cfg
		if qcfg.Instances == nil {
			qcfg.Instances = []string{"att48", "kroC100", "a280"}
		}
		if err := emit(bench.QualityTable(m2050, qcfg, *quality)); err != nil {
			return err
		}
	}

	switch *ablate {
	case "theta":
		pcfg := cfg
		if pcfg.Instances == nil {
			pcfg.Instances = []string{"kroC100", "a280", "pcb442"}
		}
		if err := emit(bench.AblationTheta(c1060, pcfg, []int{32, 64, 128, 256, 512})); err != nil {
			return err
		}
	case "block":
		pcfg := cfg
		if pcfg.Instances == nil {
			pcfg.Instances = []string{"att48", "kroC100", "a280", "pcb442"}
		}
		if err := emit(bench.AblationDataBlock(c1060, pcfg, []int{32, 64, 128, 256, 512})); err != nil {
			return err
		}
	case "nn":
		pcfg := cfg
		if pcfg.Instances == nil {
			pcfg.Instances = []string{"kroC100", "a280", "pcb442"}
		}
		if err := emit(bench.AblationNN(c1060, pcfg, []int{10, 20, 30, 40, 60})); err != nil {
			return err
		}
	case "":
	default:
		return fmt.Errorf("unknown ablation %q (want theta, block or nn)", *ablate)
	}

	if wantFig("5") {
		pcfg := cfg
		if pcfg.Instances == nil {
			pcfg.Instances = bench.PaperPherInstances
		}
		if err := emit(bench.Figure5(both, pcfg)); err != nil {
			return err
		}
		if *paper {
			fmt.Fprintf(stdout, "Paper: up to ~%.2fx (C1060) / ~%.2fx (M2050) at pr1002, <1x at the small end on C1060\n\n",
				bench.PaperFig5Peak["Tesla C1060"], bench.PaperFig5Peak["Tesla M2050"])
		}
	}
	return nil
}

// runBatch measures the batch scheduler's wall-clock speed-up over
// sequential solving and its derived-data cache hit rate, printing the
// summary and optionally writing the BENCH_batch.json trajectory file.
func runBatch(stdout io.Writer, jsonPath string, workers, seeds, iters int) error {
	r, err := bench.BatchThroughput(bench.BatchConfig{Workers: workers, Seeds: seeds, Iterations: iters})
	if err != nil {
		return err
	}
	r.Format(stdout)
	if !r.Identical {
		return fmt.Errorf("batch results diverged from sequential solves")
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	return nil
}

// runHostBench measures the host cost of every ported kernel under the
// scalar reference path and the warp-vector fast path, printing the summary
// and writing the BENCH_hostperf.json trajectory file.
func runHostBench(stdout io.Writer, jsonPath, instance string, repeats int) error {
	r, err := bench.HostPerf(bench.HostPerfConfig{Instance: instance, Repeats: repeats})
	if err != nil {
		return err
	}
	r.Format(stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	return nil
}

// runIslands sweeps the island-model ensemble over instance x island count
// x fault scenario (fault-free, transient faults, permanent kill at 50% of
// the victim's launches) and writes the BENCH_islands.json artifact.
func runIslands(stdout io.Writer, jsonPath string, iters int, rate float64) error {
	r, err := bench.Islands(bench.IslandsConfig{Iterations: iters, FaultRate: rate})
	if err != nil {
		return err
	}
	r.Format(stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	return nil
}

// runTensorBench sweeps the tensor engine against the CPU colony and the
// warp-vector simulator across the TSPLIB benchmarks and writes the
// BENCH_tensor.json artifact.
func runTensorBench(stdout io.Writer, jsonPath string, iters int) error {
	r, err := bench.Tensor(bench.TensorConfig{Iterations: iters})
	if err != nil {
		return err
	}
	r.Format(stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonPath)
	}
	return nil
}

// runTensorGate reruns a CPU-vs-tensor sweep (no simulator column — the
// gate only needs the speedup ratio) and fails if any instance's tensor
// speedup fell more than 20% below the committed baseline. The ratio of
// two same-process wall-clocks transfers across machines where raw
// ns/ant-step would not. The sweep runs at 1 worker and at GOMAXPROCS
// workers (deduplicated), so the gate covers both the serial path and the
// widest parallel configuration this machine can actually exercise.
func runTensorGate(stdout io.Writer, baselinePath string, iters int) error {
	f, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	baseline, err := bench.ReadTensorResult(f)
	f.Close()
	if err != nil {
		return err
	}
	gateWorkers := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		gateWorkers = append(gateWorkers, g)
	}
	current, err := bench.Tensor(bench.TensorConfig{Iterations: iters, SkipSim: true, Workers: gateWorkers})
	if err != nil {
		return err
	}
	current.Format(stdout)
	if err := bench.CompareTensor(baseline, current, 0.20); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tensor gate passed against %s\n", baselinePath)
	return nil
}

// runInject runs the fault-tolerant GPU Ant System under an injected fault
// plan on a few benchmarks and reports whether the recovered result matches
// the fault-free run, plus the recovery activity (retries, resets,
// degradation to the CPU colony).
func runInject(stdout io.Writer, spec string) error {
	plan, err := cuda.ParseFaultSpec(spec)
	if err != nil {
		return err
	}
	p := aco.DefaultParams()
	p.Seed = 1
	const iters = 10
	fmt.Fprintf(stdout, "fault injection: %s, Tesla M2050, AS (v6 + atomic-shared), %d iterations\n\n", spec, iters)
	for _, name := range []string{"att48", "kroC100", "a280"} {
		in, err := tsp.LoadBenchmark(name)
		if err != nil {
			return err
		}
		clean := cuda.TeslaM2050()
		_, wantLen, _, _, err := core.RunRecovered(context.Background(), clean, in, p,
			core.TourNNSharedTexture, core.PherAtomicShared, iters, core.RecoveryOptions{}, nil, nil, nil)
		if err != nil {
			return fmt.Errorf("fault-free run on %s: %w", name, err)
		}
		dev := cuda.TeslaM2050()
		dev.Faults = plan.Clone()
		_, gotLen, secs, rep, err := core.RunRecovered(context.Background(), dev, in, p,
			core.TourNNSharedTexture, core.PherAtomicShared, iters, core.RecoveryOptions{}, nil, nil, nil)
		if err != nil {
			return fmt.Errorf("injected run on %s: %w", name, err)
		}
		verdict := "IDENTICAL to fault-free"
		switch {
		case rep.Degraded:
			verdict = fmt.Sprintf("completed on CPU (fault-free best %d)", wantLen)
		case gotLen != wantLen:
			verdict = fmt.Sprintf("MISMATCH: fault-free best %d", wantLen)
		}
		fmt.Fprintf(stdout, "%-8s best %8d  %9.3f ms  %s\n         %s\n", name, gotLen, secs*1e3, verdict, rep)
	}
	return nil
}

// runProfile runs one full Ant System iteration on att48 for each device
// with a tracer attached and prints the per-kernel summary — the profiler
// view of the per-kernel costs behind the paper's tables.
func runProfile(stdout io.Writer, traceOut string) error {
	in, err := tsp.LoadBenchmark("att48")
	if err != nil {
		return err
	}
	p := aco.DefaultParams()
	p.Seed = 1
	for _, dev := range []*cuda.Device{cuda.TeslaC1060(), cuda.TeslaM2050()} {
		e, err := core.NewEngine(dev, in, p)
		if err != nil {
			return err
		}
		tr := trace.NewCollector()
		e.SetTracer(tr)
		if _, err := e.Iterate(core.TourDataParallelTexture, core.PherAtomicShared); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: one AS iteration on att48, %.4f ms simulated\n",
			dev.Name, tr.Seconds()*1e3)
		if err := tr.WriteSummary(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if traceOut != "" && dev.Name == "Tesla M2050" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote Chrome trace JSON to %s\n", traceOut)
		}
	}
	return nil
}
