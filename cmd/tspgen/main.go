// Command tspgen writes the reproduction's deterministic synthetic TSP
// instances — or custom ones — as standard TSPLIB files, so they can be fed
// to other TSP tools (or back into acotsp -file).
//
// Usage:
//
//	tspgen -bench att48                       # a paper stand-in to att48.tsp
//	tspgen -bench all -dir ./instances        # the full paper set
//	tspgen -n 500 -seed 7 -clusters 8 -o c500.tsp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"antgpu/internal/tsp"
)

func main() {
	var (
		benchName = flag.String("bench", "", "paper benchmark to emit (att48 ... pr2392, or 'all')")
		n         = flag.Int("n", 0, "generate a custom instance with this many cities")
		seed      = flag.Uint64("seed", 1, "generation seed (custom instances)")
		clusters  = flag.Int("clusters", 0, "number of point clusters (0 = uniform)")
		width     = flag.Float64("width", 10000, "coordinate range (custom instances)")
		out       = flag.String("o", "", "output file (default <name>.tsp)")
		dir       = flag.String("dir", ".", "output directory")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tspgen:", err)
		os.Exit(1)
	}

	write := func(in *tsp.Instance, path string) {
		if path == "" {
			path = filepath.Join(*dir, in.Name+".tsp")
		}
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := tsp.Write(f, in); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d cities, %s)\n", path, in.N(), in.Type)
	}

	switch {
	case *benchName == "all":
		for _, name := range tsp.PaperBenchmarks {
			in, err := tsp.LoadBenchmark(name)
			if err != nil {
				fail(err)
			}
			write(in, "")
		}
	case *benchName != "":
		in, err := tsp.LoadBenchmark(*benchName)
		if err != nil {
			fail(err)
		}
		write(in, *out)
	case *n > 0:
		in, err := tsp.Generate(tsp.GenSpec{
			Name:     fmt.Sprintf("synth%d", *n),
			N:        *n,
			Type:     tsp.Euc2D,
			Seed:     *seed,
			Width:    *width,
			Clusters: *clusters,
		})
		if err != nil {
			fail(err)
		}
		write(in, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
