package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var bestLenRE = regexp.MustCompile(`best tour length: (\d+)`)

// bestLen extracts the reported tour length; run() itself validates the
// tour (report fails the run on an invalid permutation), so a successful
// run with a plausible length is a full smoke check.
func bestLen(t *testing.T, out string) int {
	t.Helper()
	m := bestLenRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no best tour length in output:\n%s", out)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil || n <= 0 {
		t.Fatalf("bad tour length %q", m[1])
	}
	return n
}

func TestSmokeCPUBackend(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "att48", "-seed", "7", "-iters", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	l := bestLen(t, out.String())
	// Optimum for the att48 stand-in family is ~19k; anything within 2x of
	// the greedy baseline bound is sane for 5 iterations.
	if l < 10000 || l > 60000 {
		t.Fatalf("implausible att48 tour length %d", l)
	}
}

func TestSmokeGPUBackendWithProfile(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	args := []string{"-bench", "att48", "-seed", "7", "-iters", "5",
		"-backend", "gpu", "-profile", "-traceout", traceFile}

	var out1 bytes.Buffer
	if err := run(args, &out1); err != nil {
		t.Fatal(err)
	}
	bestLen(t, out1.String())
	if !bytes.Contains(out1.Bytes(), []byte("profile:")) {
		t.Fatalf("no profile summary in output:\n%s", out1.String())
	}

	raw1, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw1, &parsed); err != nil {
		t.Fatalf("-traceout file is not valid trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) < 10 {
		t.Fatalf("trace has only %d events", len(parsed.TraceEvents))
	}

	// Same seed, same everything: stdout and trace JSON are byte-identical.
	var out2 bytes.Buffer
	if err := run(args, &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("same-seed runs printed different output")
	}
	raw2, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("same-seed runs wrote different trace JSON")
	}
}

func TestSmokeCPUProfile(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{"-bench", "att48", "-seed", "7", "-iters", "3",
		"-profile", "-traceout", traceFile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("CPU-backend trace JSON invalid")
	}
	if !bytes.Contains(out.Bytes(), []byte("construct")) {
		t.Fatalf("CPU profile summary missing construct stage:\n%s", out.String())
	}
}

func TestSmokeIterLogWithProfile(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-bench", "att48", "-seed", "7", "-iters", "2",
		"-backend", "gpu", "-trace", "-profile"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("iter   1:")) {
		t.Fatalf("no per-iteration log:\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("profile:")) {
		t.Fatalf("no profile summary in -trace path:\n%s", out.String())
	}
}

func TestRunRejectsMissingInstance(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("run without -bench/-file should fail")
	}
}

func TestSmokeInject(t *testing.T) {
	base := []string{"-bench", "att48", "-seed", "7", "-iters", "6", "-backend", "gpu"}
	var clean bytes.Buffer
	if err := run(base, &clean); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(append(base, "-inject", "rate=0.03,seed=9"), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("recovery:")) {
		t.Fatalf("no recovery report in output:\n%s", out.String())
	}
	// The recovered run reports the same best length as the fault-free run.
	if got, want := bestLen(t, out.String()), bestLen(t, clean.String()); got != want {
		t.Fatalf("injected run best %d, fault-free best %d", got, want)
	}
}

func TestInjectRejectsBadUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bench", "att48", "-inject", "rate=0.1"}, &out); err == nil {
		t.Fatal("-inject on the CPU backend should fail")
	}
	if err := run([]string{"-bench", "att48", "-backend", "gpu", "-inject", "bogus"}, &out); err == nil {
		t.Fatal("malformed -inject spec should fail")
	}
	if err := run([]string{"-bench", "att48", "-backend", "gpu", "-trace", "-inject", "rate=0.1"}, &out); err == nil {
		t.Fatal("-inject with -trace should fail")
	}
}

func TestSmokeGPURuns(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-bench", "att48", "-seed", "7", "-iters", "3",
		"-backend", "gpu", "-runs", "4", "-workers", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("best of 4 concurrent GPU runs")) {
		t.Fatalf("no best-of header in output:\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("cache 3 hits / 1 misses")) {
		t.Fatalf("runs did not share derived data:\n%s", out.String())
	}
	multi := bestLen(t, out.String())

	// The best-of must match the best of four sequential single runs.
	bestSolo := 0
	for s := 7; s <= 10; s++ {
		var solo bytes.Buffer
		if err := run([]string{"-bench", "att48", "-seed", strconv.Itoa(s), "-iters", "3",
			"-backend", "gpu"}, &solo); err != nil {
			t.Fatal(err)
		}
		if l := bestLen(t, solo.String()); bestSolo == 0 || l < bestSolo {
			bestSolo = l
		}
	}
	if multi != bestSolo {
		t.Fatalf("best-of-4 reported %d, sequential best is %d", multi, bestSolo)
	}
}

func TestSmokeMetricsOut(t *testing.T) {
	promFile := filepath.Join(t.TempDir(), "solve.prom")
	var out bytes.Buffer
	err := run([]string{"-bench", "att48", "-backend", "gpu", "-seed", "7", "-iters", "3",
		"-metricsout", promFile, "-optimum", "10628"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("wrote metrics exposition to")) {
		t.Fatalf("missing metrics write confirmation:\n%s", out.String())
	}
	raw, err := os.ReadFile(promFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`antgpu_kernel_launches_total{kernel="`,
		`antgpu_optimum_gap_ratio{instance="att48"`,
		`antgpu_solves_total{backend="gpu"`,
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("exposition file missing %q:\n%s", want, raw)
		}
	}

	// "-" streams the exposition to stdout instead.
	out.Reset()
	err = run([]string{"-bench", "att48", "-seed", "7", "-iters", "2", "-metricsout", "-"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte("# TYPE antgpu_iterations_total counter")) {
		t.Fatalf("stdout exposition missing convergence counter:\n%s", out.String())
	}
}
