// Command acotsp solves TSP instances with the Ant System, on the
// sequential CPU baseline or on the simulated GPU with any of the paper's
// kernel versions.
//
// Usage:
//
//	acotsp -bench att48 -iters 50                       # CPU baseline
//	acotsp -bench pr1002 -backend gpu -device m2050     # GPU, defaults
//	acotsp -file my.tsp -backend gpu -tour 7 -pher 1    # explicit kernels
//	acotsp -bench kroC100 -trace                        # per-iteration log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"antgpu"
	"antgpu/internal/aco"
	"antgpu/internal/core"
	"antgpu/internal/tsp"
)

func main() {
	var (
		benchName = flag.String("bench", "", "paper benchmark instance name (att48 ... pr2392)")
		file      = flag.String("file", "", "TSPLIB file to solve instead of a named benchmark")
		iters     = flag.Int("iters", 20, "Ant System iterations")
		backend   = flag.String("backend", "cpu", "cpu or gpu (simulated)")
		device    = flag.String("device", "m2050", "simulated device: c1060 or m2050")
		tourV     = flag.Int("tour", 0, "tour construction version 1-8 (0 = auto)")
		pherV     = flag.Int("pher", 0, "pheromone update version 1-5 (0 = atomic+shared)")
		variant   = flag.String("variant", "nn", "CPU construction: nn or full")
		seed      = flag.Uint64("seed", 1, "random seed")
		ants      = flag.Int("ants", 0, "ant count m (0 = one per city)")
		trace     = flag.Bool("trace", false, "log per-iteration best and stage times (gpu backend)")
		alg       = flag.String("alg", "as", "algorithm: as, acs, mmas, eas or rank")
		ls        = flag.Bool("ls", false, "apply 2-opt local search to every ant's tour (AS only)")
		runs      = flag.Int("runs", 1, "independent parallel runs, best-of (CPU AS only)")
		tourOut   = flag.String("tourout", "", "write the best tour to this TSPLIB .tour file")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "acotsp:", err)
		os.Exit(1)
	}

	var in *antgpu.Instance
	var err error
	switch {
	case *file != "":
		in, err = antgpu.ParseTSPLIB(*file)
	case *benchName != "":
		in, err = antgpu.LoadBenchmark(*benchName)
	default:
		err = fmt.Errorf("need -bench <name> or -file <path>; benchmarks: %s",
			strings.Join(antgpu.Benchmarks(), ", "))
	}
	if err != nil {
		fail(err)
	}

	p := antgpu.DefaultParams()
	p.Seed = *seed
	p.Ants = *ants

	fmt.Printf("instance %s: %d cities (%s), %d ants, %d iterations\n",
		in.Name, in.N(), in.Type, p.AntCount(in.N()), *iters)

	if v := strings.ToLower(*alg); v == "acs" || v == "mmas" || v == "eas" || v == "rank" {
		opts := antgpu.SolveOptions{Iterations: *iters}
		switch v {
		case "eas":
			opts.Algorithm = antgpu.AlgorithmEAS
			opts.Params = p
		case "rank":
			opts.Algorithm = antgpu.AlgorithmRank
			opts.Params = p
		case "acs":
			opts.Algorithm = antgpu.AlgorithmACS
			acs := antgpu.DefaultACSParams()
			acs.Seed = *seed
			if *ants > 0 {
				acs.Ants = *ants
			}
			opts.ACS = acs
		case "mmas":
			opts.Algorithm = antgpu.AlgorithmMMAS
			mmas := antgpu.DefaultMMASParams()
			mmas.Seed = *seed
			if *ants > 0 {
				mmas.Ants = *ants
			}
			opts.MMAS = mmas
		}
		clock := "modelled CPU"
		if *backend == "gpu" {
			opts.Backend = antgpu.BackendGPU
			if strings.EqualFold(*device, "c1060") {
				opts.Device = antgpu.TeslaC1060()
			} else {
				opts.Device = antgpu.TeslaM2050()
			}
			fmt.Printf("device: %s\n", opts.Device)
			clock = "simulated GPU"
		}
		res, err := antgpu.Solve(in, opts)
		if err != nil {
			fail(err)
		}
		report(in, res.BestTour, res.BestLen, res.SimulatedSeconds, clock)
		return
	}

	if *backend == "cpu" {
		v := aco.NNListConstruction
		if *variant == "full" {
			v = aco.FullProbabilistic
		}
		if *runs > 1 {
			results, best, err := aco.IndependentRuns(in, p, v, *runs, *iters)
			if err != nil {
				fail(err)
			}
			fmt.Printf("best of %d independent runs (seed %d):\n", *runs, results[best].Seed)
			report(in, results[best].BestTour, results[best].BestLen, 0, "modelled CPU")
			writeTour(*tourOut, in, results[best].BestTour)
			return
		}
		res, err := antgpu.Solve(in, antgpu.SolveOptions{
			Params: p, Iterations: *iters, Variant: v, LocalSearch: *ls,
		})
		if err != nil {
			fail(err)
		}
		report(in, res.BestTour, res.BestLen, res.SimulatedSeconds, "modelled CPU")
		writeTour(*tourOut, in, res.BestTour)
		return
	}

	var dev *antgpu.Device
	switch strings.ToLower(*device) {
	case "c1060":
		dev = antgpu.TeslaC1060()
	case "m2050":
		dev = antgpu.TeslaM2050()
	default:
		fail(fmt.Errorf("unknown device %q (want c1060 or m2050)", *device))
	}
	fmt.Printf("device: %s\n", dev)

	if !*trace {
		res, err := antgpu.Solve(in, antgpu.SolveOptions{
			Params: p, Iterations: *iters, Backend: antgpu.BackendGPU,
			Device: dev, Tour: antgpu.TourVersion(*tourV), Pher: antgpu.PherVersion(*pherV),
			LocalSearch: *ls,
		})
		if err != nil {
			fail(err)
		}
		report(in, res.BestTour, res.BestLen, res.SimulatedSeconds, "simulated GPU")
		writeTour(*tourOut, in, res.BestTour)
		return
	}

	// Traced run: drive the engine directly for per-iteration detail.
	e, err := core.NewEngine(dev, in, p)
	if err != nil {
		fail(err)
	}
	tv := antgpu.TourVersion(*tourV)
	if tv == 0 {
		tv = antgpu.TourNNSharedTexture
	}
	pv := antgpu.PherVersion(*pherV)
	if pv == 0 {
		pv = antgpu.PherAtomicShared
	}
	fmt.Printf("kernels: %v / %v\n", tv, pv)
	total := 0.0
	for i := 1; i <= *iters; i++ {
		res, err := e.Iterate(tv, pv)
		if err != nil {
			fail(err)
		}
		total += res.Construct.Seconds() + res.Update.Seconds()
		_, best := e.Best()
		fmt.Printf("iter %3d: best %8d | construct %8.3f ms | update %8.3f ms\n",
			i, best, res.Construct.Millis(), res.Update.Millis())
	}
	tour, best := e.Best()
	report(in, tour, best, total, "simulated GPU")
	writeTour(*tourOut, in, tour)
}

// writeTour saves the tour in TSPLIB TOUR format when a path was given.
func writeTour(path string, in *antgpu.Instance, tour []int32) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acotsp:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tsp.WriteTour(f, in.Name+".tour", tour); err != nil {
		fmt.Fprintln(os.Stderr, "acotsp:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote best tour to %s\n", path)
}

func report(in *antgpu.Instance, tour []int32, best int64, secs float64, clock string) {
	if err := in.ValidTour(tour); err != nil {
		fmt.Fprintln(os.Stderr, "acotsp: INVALID RESULT:", err)
		os.Exit(1)
	}
	nn := in.TourLength(in.NearestNeighbourTour(0))
	fmt.Printf("best tour length: %d (greedy NN baseline: %d, ratio %.3f)\n",
		best, nn, float64(best)/float64(nn))
	fmt.Printf("%s time: %.3f ms\n", clock, secs*1e3)
}
