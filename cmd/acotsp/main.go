// Command acotsp solves TSP instances with the Ant System, on the
// sequential CPU baseline or on the simulated GPU with any of the paper's
// kernel versions.
//
// Usage:
//
//	acotsp -bench att48 -iters 50                       # CPU baseline
//	acotsp -bench pr1002 -backend gpu -device m2050     # GPU, defaults
//	acotsp -file my.tsp -backend gpu -tour 7 -pher 1    # explicit kernels
//	acotsp -bench kroC100 -trace                        # per-iteration log
//	acotsp -bench att48 -backend gpu -profile \
//	       -traceout trace.json                         # profiler + Perfetto
//	acotsp -bench att48 -backend gpu \
//	       -inject rate=0.02,seed=7                     # fault-tolerant solve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"antgpu"
	"antgpu/internal/aco"
	"antgpu/internal/core"
	"antgpu/internal/tsp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acotsp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("acotsp", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "paper benchmark instance name (att48 ... pr2392)")
		file      = fs.String("file", "", "TSPLIB file to solve instead of a named benchmark")
		iters     = fs.Int("iters", 20, "Ant System iterations")
		backend   = fs.String("backend", "cpu", "cpu, gpu (simulated) or tensor (float32 host engine)")
		device    = fs.String("device", "m2050", "simulated device: c1060 or m2050")
		tourV     = fs.Int("tour", 0, "tour construction version 1-8 (0 = auto)")
		pherV     = fs.Int("pher", 0, "pheromone update version 1-5 (0 = atomic+shared)")
		variant   = fs.String("variant", "nn", "CPU construction: nn or full")
		seed      = fs.Uint64("seed", 1, "random seed")
		ants      = fs.Int("ants", 0, "ant count m (0 = one per city)")
		iterLog   = fs.Bool("trace", false, "log per-iteration best and stage times (gpu backend)")
		alg       = fs.String("alg", "as", "algorithm: as, acs, mmas, eas or rank")
		ls        = fs.Bool("ls", false, "apply 2-opt local search to every ant's tour (AS only)")
		runs      = fs.Int("runs", 1, "independent runs with consecutive seeds, best-of (AS; "+
			"the gpu backend schedules them concurrently)")
		workers  = fs.Int("workers", 0, "worker goroutines for -runs on the gpu backend (0 = GOMAXPROCS)")
		tourOut  = fs.String("tourout", "", "write the best tour to this TSPLIB .tour file")
		profile  = fs.Bool("profile", false, "profile every kernel launch and phase; print the per-kernel summary")
		traceOut = fs.String("traceout", "", "write the profile as Chrome trace-event JSON (implies -profile)")
		inject   = fs.String("inject", "", "inject deterministic device faults, e.g. rate=0.02,sticky=0.1,seed=7 "+
			"(gpu backend; AS recovers via checkpoint/retry/CPU-failover, other algorithms fail fast)")
		metricsOut = fs.String("metricsout", "", "write the solve's Prometheus metrics exposition to this file "+
			"(\"-\" for stdout): kernel hardware counters, convergence gauges, solve outcomes")
		optimum = fs.Int64("optimum", 0, "known optimal tour length, enables the gap-to-optimum metric (with -metricsout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *backend {
	case "cpu", "gpu", "tensor":
	default:
		return fmt.Errorf("unknown backend %q (want cpu, gpu or tensor)", *backend)
	}
	if *traceOut != "" {
		*profile = true
	}
	var reg *antgpu.Metrics
	if *metricsOut != "" {
		if *iterLog {
			return fmt.Errorf("-metricsout is not supported with -trace (the traced run drives the engine directly)")
		}
		reg = antgpu.NewMetrics()
		defer func() {
			if err := writeMetrics(stdout, *metricsOut, reg); err != nil {
				fmt.Fprintln(stdout, "metrics:", err)
			}
		}()
	}
	var faults *antgpu.FaultPlan
	if *inject != "" {
		var err error
		if faults, err = antgpu.ParseFaultSpec(*inject); err != nil {
			return err
		}
		if *backend != "gpu" {
			return fmt.Errorf("-inject needs -backend gpu (faults live on the simulated device)")
		}
		if *iterLog {
			return fmt.Errorf("-inject is not supported with -trace (the traced run drives the engine directly)")
		}
	}

	var in *antgpu.Instance
	var err error
	switch {
	case *file != "":
		in, err = antgpu.ParseTSPLIB(*file)
	case *benchName != "":
		in, err = antgpu.LoadBenchmark(*benchName)
	default:
		err = fmt.Errorf("need -bench <name> or -file <path>; benchmarks: %s",
			strings.Join(antgpu.Benchmarks(), ", "))
	}
	if err != nil {
		return err
	}

	p := antgpu.DefaultParams()
	p.Seed = *seed
	p.Ants = *ants

	fmt.Fprintf(stdout, "instance %s: %d cities (%s), %d ants, %d iterations\n",
		in.Name, in.N(), in.Type, p.AntCount(in.N()), *iters)

	if v := strings.ToLower(*alg); v == "acs" || v == "mmas" || v == "eas" || v == "rank" {
		opts := antgpu.SolveOptions{Iterations: *iters, Profile: *profile, Metrics: reg, Optimum: *optimum}
		switch v {
		case "eas":
			opts.Algorithm = antgpu.AlgorithmEAS
			opts.Params = p
		case "rank":
			opts.Algorithm = antgpu.AlgorithmRank
			opts.Params = p
		case "acs":
			opts.Algorithm = antgpu.AlgorithmACS
			acs := antgpu.DefaultACSParams()
			acs.Seed = *seed
			if *ants > 0 {
				acs.Ants = *ants
			}
			opts.ACS = acs
		case "mmas":
			opts.Algorithm = antgpu.AlgorithmMMAS
			mmas := antgpu.DefaultMMASParams()
			mmas.Seed = *seed
			if *ants > 0 {
				mmas.Ants = *ants
			}
			opts.MMAS = mmas
		}
		clock := "modelled CPU"
		if *backend == "tensor" {
			opts.Backend = antgpu.BackendTensor
			clock = "host wall-clock"
		}
		if *backend == "gpu" {
			opts.Backend = antgpu.BackendGPU
			opts.Faults = faults
			if strings.EqualFold(*device, "c1060") {
				opts.Device = antgpu.TeslaC1060()
			} else {
				opts.Device = antgpu.TeslaM2050()
			}
			fmt.Fprintf(stdout, "device: %s\n", opts.Device)
			clock = "simulated GPU"
		}
		res, err := antgpu.Solve(in, opts)
		if err != nil {
			return err
		}
		reportRecovery(stdout, res.Recovery)
		if err := report(stdout, in, res.BestTour, res.BestLen, res.SimulatedSeconds, clock); err != nil {
			return err
		}
		return emitProfile(stdout, res.Trace, *traceOut)
	}

	if *backend == "tensor" {
		if *runs > 1 {
			return fmt.Errorf("-runs is not supported with -backend tensor (use the batch API)")
		}
		if *iterLog {
			return fmt.Errorf("-trace is not supported with -backend tensor")
		}
		v := aco.NNListConstruction
		if *variant == "full" {
			v = aco.FullProbabilistic
		}
		res, err := antgpu.Solve(in, antgpu.SolveOptions{
			Params: p, Iterations: *iters, Variant: v, Backend: antgpu.BackendTensor,
			LocalSearch: *ls, Profile: *profile, Metrics: reg, Optimum: *optimum,
		})
		if err != nil {
			return err
		}
		if err := report(stdout, in, res.BestTour, res.BestLen, res.SimulatedSeconds, "host wall-clock"); err != nil {
			return err
		}
		if err := writeTour(stdout, *tourOut, in, res.BestTour); err != nil {
			return err
		}
		return emitProfile(stdout, res.Trace, *traceOut)
	}

	if *backend == "cpu" {
		v := aco.NNListConstruction
		if *variant == "full" {
			v = aco.FullProbabilistic
		}
		if *runs > 1 {
			results, best, err := aco.IndependentRuns(in, p, v, *runs, *iters)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "best of %d independent runs (seed %d):\n", *runs, results[best].Seed)
			if err := report(stdout, in, results[best].BestTour, results[best].BestLen, 0, "modelled CPU"); err != nil {
				return err
			}
			return writeTour(stdout, *tourOut, in, results[best].BestTour)
		}
		res, err := antgpu.Solve(in, antgpu.SolveOptions{
			Params: p, Iterations: *iters, Variant: v, LocalSearch: *ls, Profile: *profile,
			Metrics: reg, Optimum: *optimum,
		})
		if err != nil {
			return err
		}
		if err := report(stdout, in, res.BestTour, res.BestLen, res.SimulatedSeconds, "modelled CPU"); err != nil {
			return err
		}
		if err := writeTour(stdout, *tourOut, in, res.BestTour); err != nil {
			return err
		}
		return emitProfile(stdout, res.Trace, *traceOut)
	}

	var dev *antgpu.Device
	switch strings.ToLower(*device) {
	case "c1060":
		dev = antgpu.TeslaC1060()
	case "m2050":
		dev = antgpu.TeslaM2050()
	default:
		return fmt.Errorf("unknown device %q (want c1060 or m2050)", *device)
	}
	fmt.Fprintf(stdout, "device: %s\n", dev)

	if *runs > 1 && !*iterLog {
		// Best-of over consecutive seeds, scheduled concurrently: every run
		// solves on a private clone of dev and the runs share the instance's
		// derived data through the batch pool's cache.
		reqs := make([]antgpu.SolveRequest, *runs)
		for i := range reqs {
			pi := p
			pi.Seed = *seed + uint64(i)
			reqs[i] = antgpu.SolveRequest{Instance: in, Options: antgpu.SolveOptions{
				Params: pi, Iterations: *iters, Backend: antgpu.BackendGPU,
				Device: dev, Tour: antgpu.TourVersion(*tourV), Pher: antgpu.PherVersion(*pherV),
				LocalSearch: *ls, Faults: faults, Optimum: *optimum,
			}}
		}
		rep, err := antgpu.SolveBatch(context.Background(), reqs,
			antgpu.PoolOptions{Workers: *workers, Metrics: reg})
		if err != nil {
			return err
		}
		best := -1
		for i, it := range rep.Results {
			if it.Err != nil {
				return fmt.Errorf("run %d (seed %d): %w", i, *seed+uint64(i), it.Err)
			}
			if best < 0 || it.Result.BestLen < rep.Results[best].Result.BestLen {
				best = i
			}
		}
		fmt.Fprintf(stdout, "best of %d concurrent GPU runs (seed %d): "+
			"%.3f s wall, %.3f s simulated total, cache %d hits / %d misses\n",
			*runs, *seed+uint64(best), rep.WallSeconds, rep.SimulatedSeconds,
			rep.CacheHits, rep.CacheMisses)
		res := rep.Results[best].Result
		reportRecovery(stdout, res.Recovery)
		if err := report(stdout, in, res.BestTour, res.BestLen, res.SimulatedSeconds, "simulated GPU"); err != nil {
			return err
		}
		return writeTour(stdout, *tourOut, in, res.BestTour)
	}

	if !*iterLog {
		res, err := antgpu.Solve(in, antgpu.SolveOptions{
			Params: p, Iterations: *iters, Backend: antgpu.BackendGPU,
			Device: dev, Tour: antgpu.TourVersion(*tourV), Pher: antgpu.PherVersion(*pherV),
			LocalSearch: *ls, Profile: *profile, Faults: faults,
			Metrics: reg, Optimum: *optimum,
		})
		if err != nil {
			return err
		}
		reportRecovery(stdout, res.Recovery)
		if err := report(stdout, in, res.BestTour, res.BestLen, res.SimulatedSeconds, "simulated GPU"); err != nil {
			return err
		}
		if err := writeTour(stdout, *tourOut, in, res.BestTour); err != nil {
			return err
		}
		return emitProfile(stdout, res.Trace, *traceOut)
	}

	// Traced run: drive the engine directly for per-iteration detail.
	e, err := core.NewEngine(dev, in, p)
	if err != nil {
		return err
	}
	defer e.Free()
	var tr *antgpu.Trace
	if *profile {
		tr = antgpu.NewTrace()
		e.SetTracer(tr)
	}
	tv := antgpu.TourVersion(*tourV)
	if tv == 0 {
		tv = antgpu.TourNNSharedTexture
	}
	pv := antgpu.PherVersion(*pherV)
	if pv == 0 {
		pv = antgpu.PherAtomicShared
	}
	fmt.Fprintf(stdout, "kernels: %v / %v\n", tv, pv)
	total := 0.0
	for i := 1; i <= *iters; i++ {
		res, err := e.Iterate(tv, pv)
		if err != nil {
			return err
		}
		total += res.Construct.Seconds() + res.Update.Seconds()
		_, best := e.Best()
		fmt.Fprintf(stdout, "iter %3d: best %8d | construct %8.3f ms | update %8.3f ms\n",
			i, best, res.Construct.Millis(), res.Update.Millis())
	}
	tour, best := e.Best()
	if err := report(stdout, in, tour, best, total, "simulated GPU"); err != nil {
		return err
	}
	if err := writeTour(stdout, *tourOut, in, tour); err != nil {
		return err
	}
	return emitProfile(stdout, tr, *traceOut)
}

// writeMetrics writes the registry's Prometheus exposition to path ("-"
// selects stdout). A nil registry writes nothing.
func writeMetrics(stdout io.Writer, path string, reg *antgpu.Metrics) error {
	if reg == nil {
		return nil
	}
	if path == "-" {
		fmt.Fprintln(stdout)
		return reg.WritePrometheus(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote metrics exposition to %s\n", path)
	return nil
}

// reportRecovery prints the fault-tolerant runtime's activity, if any.
func reportRecovery(stdout io.Writer, rep *antgpu.RecoveryReport) {
	if rep != nil {
		fmt.Fprintln(stdout, rep)
	}
}

// emitProfile prints the per-kernel summary and, when a path was given,
// writes the Chrome trace-event JSON (loadable in ui.perfetto.dev).
func emitProfile(stdout io.Writer, tr *antgpu.Trace, path string) error {
	if tr == nil {
		return nil
	}
	fmt.Fprintf(stdout, "\nprofile: %.4f ms simulated across %d events\n",
		tr.Seconds()*1e3, len(tr.Events()))
	if err := tr.WriteSummary(stdout); err != nil {
		return err
	}
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote Chrome trace JSON to %s\n", path)
	return nil
}

// writeTour saves the tour in TSPLIB TOUR format when a path was given.
func writeTour(stdout io.Writer, path string, in *antgpu.Instance, tour []int32) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tsp.WriteTour(f, in.Name+".tour", tour); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote best tour to %s\n", path)
	return nil
}

func report(stdout io.Writer, in *antgpu.Instance, tour []int32, best int64, secs float64, clock string) error {
	if err := in.ValidTour(tour); err != nil {
		return fmt.Errorf("INVALID RESULT: %w", err)
	}
	nn := in.TourLength(in.NearestNeighbourTour(0))
	fmt.Fprintf(stdout, "best tour length: %d (greedy NN baseline: %d, ratio %.3f)\n",
		best, nn, float64(best)/float64(nn))
	fmt.Fprintf(stdout, "%s time: %.3f ms\n", clock, secs*1e3)
	return nil
}
