package antgpu_test

import (
	"context"
	"fmt"

	"antgpu"
)

// The quickest way to solve a TSP instance with the Ant System.
func ExampleSolve() {
	in, _ := antgpu.LoadBenchmark("att48")
	res, _ := antgpu.Solve(in, antgpu.SolveOptions{Iterations: 10})
	fmt.Println(in.ValidTour(res.BestTour) == nil)
	fmt.Println(len(res.BestTour) == in.N())
	// Output:
	// true
	// true
}

// Running the paper's GPU design on the simulated Tesla M2050. The
// simulated time is deterministic: the same seed always reports the same
// milliseconds.
func ExampleSolve_gpu() {
	in, _ := antgpu.LoadBenchmark("att48")
	opts := antgpu.SolveOptions{
		Iterations: 5,
		Backend:    antgpu.BackendGPU,
		Device:     antgpu.TeslaM2050(),
		Tour:       antgpu.TourDataParallelTexture, // Table II version 8
		Pher:       antgpu.PherAtomicShared,        // Table III version 1
	}
	a, _ := antgpu.Solve(in, opts)
	b, _ := antgpu.Solve(in, opts)
	fmt.Println(a.BestLen == b.BestLen)
	fmt.Println(a.SimulatedSeconds == b.SimulatedSeconds && a.SimulatedSeconds > 0)
	// Output:
	// true
	// true
}

// The Ant Colony System variant (the paper's stated future work) with ten
// ants instead of one per city.
func ExampleSolve_acs() {
	in, _ := antgpu.LoadBenchmark("att48")
	res, _ := antgpu.Solve(in, antgpu.SolveOptions{
		Algorithm:  antgpu.AlgorithmACS,
		Iterations: 10,
		Backend:    antgpu.BackendGPU,
	})
	greedy := in.TourLength(in.NearestNeighbourTour(0))
	fmt.Println(res.BestLen < greedy) // ACS beats the greedy tour quickly
	// Output:
	// true
}

// Solving many independent requests concurrently. The requests share one
// device model and one instance — every solve runs on a private clone, the
// repeated instance's derived data is computed once and shared, and each
// result is byte-identical to what a sequential Solve would return.
func ExampleSolveBatch() {
	in, _ := antgpu.LoadBenchmark("att48")
	dev := antgpu.TeslaM2050()
	reqs := make([]antgpu.SolveRequest, 4)
	for i := range reqs {
		reqs[i] = antgpu.SolveRequest{Instance: in, Options: antgpu.SolveOptions{
			Iterations: 5,
			Backend:    antgpu.BackendGPU,
			Device:     dev,
			Params:     antgpu.Params{Seed: uint64(i + 1)},
		}}
	}
	rep, _ := antgpu.SolveBatch(context.Background(), reqs, antgpu.PoolOptions{Workers: 2})
	fmt.Println(rep.Errs() == 0 && len(rep.Results) == 4)
	solo, _ := antgpu.Solve(in, reqs[2].Options)
	fmt.Println(rep.Results[2].Result.BestLen == solo.BestLen)
	fmt.Println(rep.CacheHits >= 3) // derived data computed once, shared 3 times
	// Output:
	// true
	// true
	// true
}

// A Pool keeps its derived-data cache across batches, so a service solving
// request streams pays each instance's Θ(n² log n) setup once.
func ExampleNewPool() {
	in, _ := antgpu.LoadBenchmark("att48")
	pool := antgpu.NewPool(antgpu.PoolOptions{Workers: 2})
	req := []antgpu.SolveRequest{{Instance: in, Options: antgpu.SolveOptions{Iterations: 3}}}
	pool.SolveBatch(context.Background(), req)
	pool.SolveBatch(context.Background(), req)
	hits, misses := pool.CacheStats()
	fmt.Println(hits, misses)
	// Output:
	// 1 1
}

// Benchmarks lists the paper's TSPLIB instance set.
func ExampleBenchmarks() {
	for _, name := range antgpu.Benchmarks()[:3] {
		fmt.Println(name)
	}
	// Output:
	// att48
	// kroC100
	// a280
}
