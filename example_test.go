package antgpu_test

import (
	"fmt"

	"antgpu"
)

// The quickest way to solve a TSP instance with the Ant System.
func ExampleSolve() {
	in, _ := antgpu.LoadBenchmark("att48")
	res, _ := antgpu.Solve(in, antgpu.SolveOptions{Iterations: 10})
	fmt.Println(in.ValidTour(res.BestTour) == nil)
	fmt.Println(len(res.BestTour) == in.N())
	// Output:
	// true
	// true
}

// Running the paper's GPU design on the simulated Tesla M2050. The
// simulated time is deterministic: the same seed always reports the same
// milliseconds.
func ExampleSolve_gpu() {
	in, _ := antgpu.LoadBenchmark("att48")
	opts := antgpu.SolveOptions{
		Iterations: 5,
		Backend:    antgpu.BackendGPU,
		Device:     antgpu.TeslaM2050(),
		Tour:       antgpu.TourDataParallelTexture, // Table II version 8
		Pher:       antgpu.PherAtomicShared,        // Table III version 1
	}
	a, _ := antgpu.Solve(in, opts)
	b, _ := antgpu.Solve(in, opts)
	fmt.Println(a.BestLen == b.BestLen)
	fmt.Println(a.SimulatedSeconds == b.SimulatedSeconds && a.SimulatedSeconds > 0)
	// Output:
	// true
	// true
}

// The Ant Colony System variant (the paper's stated future work) with ten
// ants instead of one per city.
func ExampleSolve_acs() {
	in, _ := antgpu.LoadBenchmark("att48")
	res, _ := antgpu.Solve(in, antgpu.SolveOptions{
		Algorithm:  antgpu.AlgorithmACS,
		Iterations: 10,
		Backend:    antgpu.BackendGPU,
	})
	greedy := in.TourLength(in.NearestNeighbourTour(0))
	fmt.Println(res.BestLen < greedy) // ACS beats the greedy tour quickly
	// Output:
	// true
}

// Benchmarks lists the paper's TSPLIB instance set.
func ExampleBenchmarks() {
	for _, name := range antgpu.Benchmarks()[:3] {
		fmt.Println(name)
	}
	// Output:
	// att48
	// kroC100
	// a280
}
