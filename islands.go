package antgpu

import (
	"context"
	"fmt"

	"antgpu/internal/core"
	"antgpu/internal/cuda"
	"antgpu/internal/metrics"
	"antgpu/internal/obslog"
	"antgpu/internal/rng"
	"antgpu/internal/trace"
)

// Island-runtime re-exports.
type (
	// IslandReport records what the island runtime did during a run:
	// per-island faults, restarts, migrations, quarantines, and the
	// ensemble-best trajectory. See DESIGN.md §16.
	IslandReport = core.IslandReport
	// IslandStats is one island's row of an IslandReport.
	IslandStats = core.IslandStats
	// IslandState is an island's position in the quarantine/respawn state
	// machine (running, respawned, quarantined).
	IslandState = core.IslandState
)

// Island states.
const (
	IslandRunning     = core.IslandRunning
	IslandRespawned   = core.IslandRespawned
	IslandQuarantined = core.IslandQuarantined
)

// IslandOptions configures SolveIslands.
type IslandOptions struct {
	// Islands is the number of colonies (default 4). Each runs on its own
	// clone of Device with deterministically jittered parameters.
	Islands int
	// Iterations is the number of colony iterations per island (default 20).
	Iterations int
	// Params are the master AS parameters; zero-valued fields are filled
	// from DefaultParams. Island 0 runs them unchanged; islands i > 0 run
	// seeds and jittered alpha/beta/rho derived from them (see
	// core.IslandParams).
	Params Params
	// Device is the simulated GPU model every island clones (default Tesla
	// M2050).
	Device *Device
	// Tour selects the construction kernel (default the per-size
	// recommendation), Pher the pheromone kernel (default atomic+shared).
	Tour TourVersion
	Pher PherVersion
	// MigrationEvery is the ring-migration interval in iterations (default
	// 10; negative disables). MigrationWeight scales the elite deposit of
	// an accepted migrant (default: the island's ant count).
	MigrationEvery  int
	MigrationWeight float64
	// StagnationIters restarts an island's trails after this many
	// iterations without improvement (default 30; negative disables).
	StagnationIters int
	// Jitter is the relative half-width of per-island parameter jitter
	// (default 0.1; negative disables).
	Jitter float64
	// Faults, when non-nil, is the base fault plan: each island gets a
	// clone reseeded with its order-independent island seed, so islands
	// fault independently but deterministically. IslandFaults overrides
	// the plan per island (nil entries fall back to Faults); entries are
	// cloned but used with their own seeds verbatim — the way to aim a
	// DieAtLaunch kill at one specific island.
	Faults       *FaultPlan
	IslandFaults []*FaultPlan
	// Recovery tunes each island's retry budget and backoff.
	Recovery *RecoveryOptions
	// Respawn resumes a dead island from its last checkpoint on a fresh
	// healthy device (at most MaxRespawns times per island, default 1)
	// instead of quarantining it. MinIslands (default 1) is the smallest
	// surviving ensemble the run may degrade to.
	Respawn     bool
	MaxRespawns int
	MinIslands  int
	// Profile records every island's kernels and phases, merged onto one
	// shared timeline returned in IslandsResult.Trace.
	Profile bool
	// Metrics, when non-nil, collects the per-island series (state gauge,
	// fault/restart/migration/quarantine/respawn counters labeled by
	// island id), per-kernel hardware counters per island, and the
	// ensemble-best gauge.
	Metrics *Metrics
	// Logger, when non-nil, receives one structured event per island fault,
	// retry, reset, restart, migration, quarantine and respawn; each event
	// carries its island index on top of the context's correlation. Same
	// nil-is-free contract as SolveOptions.Logger.
	Logger *Logger
}

// IslandsResult reports a SolveIslands run.
type IslandsResult struct {
	BestTour []int32
	BestLen  int64
	// BestIsland is the id of the island that found BestTour.
	BestIsland int
	// SimulatedSeconds is the fleet's simulated wall-clock: the maximum
	// over islands of kernel time plus retry backoff.
	SimulatedSeconds float64
	// Report records per-island activity and the ensemble trajectory.
	Report *IslandReport
	// Trace holds the merged profiling timeline when Profile is set.
	Trace *Trace
}

// SolveIslands runs an island-model multi-colony solve: N diversified
// colonies on N cloned devices, ring migration, stagnation restarts, and
// per-island fault recovery that survives losing islands outright (see
// IslandOptions.Respawn and the IslandReport). Fault-free runs are
// byte-deterministic for a fixed master seed.
func SolveIslands(in *Instance, opts IslandOptions) (*IslandsResult, error) {
	return SolveIslandsContext(context.Background(), in, opts)
}

// SolveIslandsContext is SolveIslands with cancellation. No panic escapes —
// internal failures come back as errors.
func SolveIslandsContext(ctx context.Context, in *Instance, opts IslandOptions) (res *IslandsResult, err error) {
	if opts.Metrics != nil {
		defer func() {
			status := "ok"
			if err != nil {
				status = "error"
			}
			opts.Metrics.Counter("antgpu_solves_total", "Solve calls completed.",
				"backend", "gpu", "algorithm", "islands", "status", status).Inc()
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("antgpu: internal error: %v", r)
		}
	}()
	if in == nil {
		return nil, fmt.Errorf("antgpu: nil instance")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	islands := opts.Islands
	if islands <= 0 {
		islands = 4
	}
	opts.Params = opts.Params.WithDefaults()

	base := opts.Device
	if base == nil {
		base = TeslaM2050()
	}
	devices := make([]*Device, islands)
	for i := range devices {
		d := base.Clone()
		d.Faults = islandFaultPlan(opts, i)
		if opts.Metrics != nil {
			d.Metrics = metrics.NewHW(opts.Metrics, d)
		}
		devices[i] = d
	}

	var tr *trace.Collector
	if opts.Profile {
		tr = trace.NewCollector()
		if corr, ok := obslog.FromContext(ctx); ok {
			tr.SetCorrelation(corr.RequestID, corr.JobID)
		}
	}
	var rec RecoveryOptions
	if opts.Recovery != nil {
		rec = *opts.Recovery
	}
	cfg := core.IslandConfig{
		Iterations:      opts.Iterations,
		Tour:            opts.Tour,
		Pher:            opts.Pher,
		MigrationEvery:  opts.MigrationEvery,
		MigrationWeight: opts.MigrationWeight,
		StagnationIters: opts.StagnationIters,
		Jitter:          opts.Jitter,
		Recovery:        rec,
		Respawn:         opts.Respawn,
		MaxRespawns:     opts.MaxRespawns,
		MinIslands:      opts.MinIslands,
		Tracer:          tr,
		Metrics:         opts.Metrics,
		Logger:          opts.Logger,
	}
	r, err := core.RunIslands(ctx, devices, in, opts.Params, cfg)
	if err != nil {
		return nil, err
	}
	return &IslandsResult{
		BestTour:         r.BestTour,
		BestLen:          r.BestLen,
		BestIsland:       r.BestIsland,
		SimulatedSeconds: r.Seconds,
		Report:           r.Report,
		Trace:            tr,
	}, nil
}

// islandFaultPlan resolves island i's fault plan: an explicit per-island
// override is cloned and used verbatim; otherwise the base plan is cloned
// and reseeded with the island's order-independent seed, so each island
// faults on its own deterministic schedule and killing one island never
// shifts another's.
func islandFaultPlan(opts IslandOptions, i int) *cuda.FaultPlan {
	if i < len(opts.IslandFaults) && opts.IslandFaults[i] != nil {
		return opts.IslandFaults[i].Clone()
	}
	if opts.Faults == nil {
		return nil
	}
	p := opts.Faults.Clone()
	p.Seed = rng.IslandSeed(p.Seed, i)
	return p
}
