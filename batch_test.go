package antgpu_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"antgpu"
)

// --- regression: cross-solve device aliasing -------------------------------

// A caller-owned *Device must never be written by Solve: no fault plan
// installed on it, no observer, no allocation accounting or poisoning.
func TestSolveDoesNotMutateCallerDevice(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	dev := antgpu.TeslaM2050()
	plan := &antgpu.FaultPlan{Seed: 7, LaunchRate: 0.05}
	_, err = antgpu.Solve(in, antgpu.SolveOptions{
		Iterations: 3, Backend: antgpu.BackendGPU, Device: dev, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Faults != nil {
		t.Errorf("Solve installed a fault plan on the caller's device: %+v", dev.Faults)
	}
	if dev.Observer != nil {
		t.Error("Solve installed an observer on the caller's device")
	}
	if got := dev.AllocatedBytes(); got != 0 {
		t.Errorf("Solve charged %d bytes against the caller's device", got)
	}
	if plan.Launches() != 0 || plan.Faults() != 0 {
		t.Errorf("Solve consumed the caller's fault plan: %d launches, %d faults",
			plan.Launches(), plan.Faults())
	}
}

// A device reused across solves must not leak the previous solve's fault
// plan: a solve with Faults followed by one without must behave exactly
// like a fresh fault-free device.
func TestReusedDeviceDoesNotKeepFaultPlan(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := antgpu.Solve(in, antgpu.SolveOptions{
		Iterations: 4, Backend: antgpu.BackendGPU, Device: antgpu.TeslaM2050(),
	})
	if err != nil {
		t.Fatal(err)
	}

	dev := antgpu.TeslaM2050()
	plan := &antgpu.FaultPlan{Seed: 3, LaunchRate: 0.05, WatchdogRate: 0.02}
	faulty, err := antgpu.Solve(in, antgpu.SolveOptions{
		Iterations: 4, Backend: antgpu.BackendGPU, Device: dev, Faults: plan,
	})
	if err != nil {
		t.Fatalf("fault-tolerant solve: %v", err)
	}
	if faulty.Recovery == nil {
		t.Fatal("solve with Faults reported no recovery activity")
	}

	clean, err := antgpu.Solve(in, antgpu.SolveOptions{
		Iterations: 4, Backend: antgpu.BackendGPU, Device: dev, // Faults nil: no plan
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Recovery != nil {
		t.Error("solve without Faults ran through the recovery runtime")
	}
	if clean.BestLen != fresh.BestLen || !reflect.DeepEqual(clean.BestTour, fresh.BestTour) ||
		clean.SimulatedSeconds != fresh.SimulatedSeconds {
		t.Errorf("reused device differs from fresh device: len %d vs %d, secs %v vs %v",
			clean.BestLen, fresh.BestLen, clean.SimulatedSeconds, fresh.SimulatedSeconds)
	}
}

// N concurrent Solve calls sharing one *Device and one *Instance must be
// race-free (run under -race in CI) and each byte-identical to a solo run.
func TestConcurrentSolvesSharedDeviceAndInstance(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	dev := antgpu.TeslaM2050()
	opts := func(seed uint64) antgpu.SolveOptions {
		return antgpu.SolveOptions{
			Iterations: 3, Backend: antgpu.BackendGPU, Device: dev,
			Params: antgpu.Params{Seed: seed},
		}
	}
	const workers = 8
	want := make([]*antgpu.Result, workers)
	for i := range want {
		res, err := antgpu.Solve(in, opts(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	got := make([]*antgpu.Result, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = antgpu.Solve(in, opts(uint64(i+1)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent solve %d: %v", i, errs[i])
		}
		if got[i].BestLen != want[i].BestLen || !reflect.DeepEqual(got[i].BestTour, want[i].BestTour) ||
			got[i].SimulatedSeconds != want[i].SimulatedSeconds {
			t.Errorf("concurrent solve %d diverged from solo run: len %d vs %d",
				i, got[i].BestLen, want[i].BestLen)
		}
	}
}

// --- regression: parameter defaulting --------------------------------------

// Params{Seed: 42} must actually use seed 42 (and the default α, β, ρ, NN),
// not be silently replaced by DefaultParams because Rho is zero.
func TestParamsSeedHonoredWithOtherFieldsUnset(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []antgpu.Backend{antgpu.BackendCPU, antgpu.BackendGPU} {
		partial, err := antgpu.Solve(in, antgpu.SolveOptions{
			Iterations: 4, Backend: backend, Params: antgpu.Params{Seed: 42},
		})
		if err != nil {
			t.Fatalf("backend %d: %v", backend, err)
		}
		full := antgpu.DefaultParams()
		full.Seed = 42
		explicit, err := antgpu.Solve(in, antgpu.SolveOptions{
			Iterations: 4, Backend: backend, Params: full,
		})
		if err != nil {
			t.Fatalf("backend %d: %v", backend, err)
		}
		if partial.BestLen != explicit.BestLen || !reflect.DeepEqual(partial.BestTour, explicit.BestTour) {
			t.Errorf("backend %d: Params{Seed: 42} != explicit defaults with seed 42 (%d vs %d)",
				backend, partial.BestLen, explicit.BestLen)
		}
		seed1, err := antgpu.Solve(in, antgpu.SolveOptions{Iterations: 4, Backend: backend})
		if err != nil {
			t.Fatalf("backend %d: %v", backend, err)
		}
		if reflect.DeepEqual(partial.BestTour, seed1.BestTour) {
			t.Errorf("backend %d: seed 42 produced the default-seed tour — seed was discarded", backend)
		}
	}
}

// Partially set ACS/MMAS params must keep their set fields instead of being
// replaced wholesale when Rho is unset.
func TestVariantParamsPartialDefaulting(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	acs := antgpu.DefaultACSParams()
	acs.Seed = 9
	wantACS, err := antgpu.Solve(in, antgpu.SolveOptions{
		Algorithm: antgpu.AlgorithmACS, Iterations: 5, ACS: acs,
	})
	if err != nil {
		t.Fatal(err)
	}
	partialACS, err := antgpu.Solve(in, antgpu.SolveOptions{
		Algorithm: antgpu.AlgorithmACS, Iterations: 5, ACS: antgpu.ACSParams{Params: antgpu.Params{Seed: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wantACS.BestLen != partialACS.BestLen || !reflect.DeepEqual(wantACS.BestTour, partialACS.BestTour) {
		t.Errorf("ACS{Seed: 9} was not defaulted per-field: %d vs %d", partialACS.BestLen, wantACS.BestLen)
	}

	mmas := antgpu.DefaultMMASParams()
	mmas.Seed = 9
	wantMMAS, err := antgpu.Solve(in, antgpu.SolveOptions{
		Algorithm: antgpu.AlgorithmMMAS, Iterations: 5, MMAS: mmas,
	})
	if err != nil {
		t.Fatal(err)
	}
	partialMMAS, err := antgpu.Solve(in, antgpu.SolveOptions{
		Algorithm: antgpu.AlgorithmMMAS, Iterations: 5, MMAS: antgpu.MMASParams{Params: antgpu.Params{Seed: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wantMMAS.BestLen != partialMMAS.BestLen || !reflect.DeepEqual(wantMMAS.BestTour, partialMMAS.BestTour) {
		t.Errorf("MMAS{Seed: 9} was not defaulted per-field: %d vs %d", partialMMAS.BestLen, wantMMAS.BestLen)
	}
}

// Genuinely invalid parameter values must fail with the typed
// ErrInvalidParams instead of being silently replaced.
func TestInvalidParamsTypedError(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	bad := []antgpu.SolveOptions{
		{Params: antgpu.Params{Rho: -0.5}},
		{Params: antgpu.Params{Rho: 1.5}},
		{Params: antgpu.Params{Alpha: -1}},
		{Params: antgpu.Params{Ants: -3}},
		{Params: antgpu.Params{NN: -1}},
		{Algorithm: antgpu.AlgorithmACS, ACS: antgpu.ACSParams{Q0: 2}},
		{Algorithm: antgpu.AlgorithmMMAS, MMAS: antgpu.MMASParams{BestEvery: -1}},
	}
	for i, opts := range bad {
		opts.Iterations = 1
		_, err := antgpu.Solve(in, opts)
		if err == nil {
			t.Errorf("case %d: invalid params accepted", i)
			continue
		}
		if !errors.Is(err, antgpu.ErrInvalidParams) {
			t.Errorf("case %d: error %v does not wrap ErrInvalidParams", i, err)
		}
	}
}

// --- batch scheduler --------------------------------------------------------

func batchRequests(t *testing.T) []antgpu.SolveRequest {
	t.Helper()
	att48, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	kroC100, err := antgpu.LoadBenchmark("kroC100")
	if err != nil {
		t.Fatal(err)
	}
	dev := antgpu.TeslaM2050() // shared on purpose: clone-on-solve keeps it safe
	return []antgpu.SolveRequest{
		{Instance: att48, Options: antgpu.SolveOptions{Iterations: 3, Backend: antgpu.BackendGPU, Device: dev}},
		{Instance: att48, Options: antgpu.SolveOptions{Iterations: 3, Backend: antgpu.BackendGPU, Device: dev,
			Params: antgpu.Params{Seed: 2}}},
		{Instance: att48, Options: antgpu.SolveOptions{Iterations: 3}}, // CPU backend
		{Instance: kroC100, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU, Device: dev,
			Tour: antgpu.TourNNList, Pher: antgpu.PherAtomic}},
		{Instance: kroC100, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU,
			Device: antgpu.TeslaC1060(), Params: antgpu.Params{Seed: 5}}},
		{Instance: att48, Options: antgpu.SolveOptions{Algorithm: antgpu.AlgorithmMMAS, Iterations: 3}},
		{Instance: att48, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU, Device: dev,
			Faults: &antgpu.FaultPlan{Seed: 11, LaunchRate: 0.1}}},
	}
}

// SolveBatch must return byte-identical per-request results to the same
// requests run through sequential Solve calls, and report cache hits when a
// batch repeats an instance.
func TestSolveBatchMatchesSequential(t *testing.T) {
	reqs := batchRequests(t)
	want := make([]*antgpu.Result, len(reqs))
	for i, r := range reqs {
		res, err := antgpu.Solve(r.Instance, r.Options)
		if err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
		want[i] = res
	}

	rep, err := antgpu.SolveBatch(context.Background(), reqs, antgpu.PoolOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(rep.Results), len(reqs))
	}
	for i, it := range rep.Results {
		if it.Err != nil {
			t.Fatalf("batch solve %d: %v", i, it.Err)
		}
		got := it.Result
		if got.BestLen != want[i].BestLen {
			t.Errorf("request %d: batch len %d != sequential len %d", i, got.BestLen, want[i].BestLen)
		}
		if !reflect.DeepEqual(got.BestTour, want[i].BestTour) {
			t.Errorf("request %d: batch tour differs from sequential tour", i)
		}
		if got.SimulatedSeconds != want[i].SimulatedSeconds {
			t.Errorf("request %d: batch %.9f simulated s != sequential %.9f",
				i, got.SimulatedSeconds, want[i].SimulatedSeconds)
		}
	}
	if rep.CacheHits < 1 {
		t.Errorf("batch repeating instances reported %d cache hits", rep.CacheHits)
	}
	if rep.CacheMisses < 1 {
		t.Errorf("batch reported %d cache misses, want at least one per distinct instance", rep.CacheMisses)
	}
	if rep.SimulatedSeconds <= 0 {
		t.Error("batch reported no simulated time")
	}
}

// Disabling the cache must not change results.
func TestSolveBatchCacheDisabled(t *testing.T) {
	reqs := batchRequests(t)[:3]
	cached, err := antgpu.SolveBatch(context.Background(), reqs, antgpu.PoolOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := antgpu.SolveBatch(context.Background(), reqs,
		antgpu.PoolOptions{Workers: 2, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if uncached.CacheHits != 0 || uncached.CacheMisses != 0 {
		t.Errorf("disabled cache reported traffic: %d hits, %d misses",
			uncached.CacheHits, uncached.CacheMisses)
	}
	for i := range reqs {
		a, b := cached.Results[i].Result, uncached.Results[i].Result
		if a.BestLen != b.BestLen || !reflect.DeepEqual(a.BestTour, b.BestTour) ||
			a.SimulatedSeconds != b.SimulatedSeconds {
			t.Errorf("request %d: cached and uncached batches diverge", i)
		}
	}
}

// Per-request failures must not fail the batch, and results stay in
// request order.
func TestSolveBatchPerRequestErrors(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []antgpu.SolveRequest{
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2}},
		{Instance: nil, Options: antgpu.SolveOptions{Iterations: 2}},
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2, Params: antgpu.Params{Rho: -1}}},
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU}},
	}
	rep, err := antgpu.SolveBatch(context.Background(), reqs, antgpu.PoolOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Err != nil || rep.Results[3].Err != nil {
		t.Errorf("healthy requests failed: %v, %v", rep.Results[0].Err, rep.Results[3].Err)
	}
	if rep.Results[1].Err == nil {
		t.Error("nil-instance request succeeded")
	}
	if !errors.Is(rep.Results[2].Err, antgpu.ErrInvalidParams) {
		t.Errorf("invalid-params request error = %v, want ErrInvalidParams", rep.Results[2].Err)
	}
	if rep.Errs() != 2 {
		t.Errorf("Errs() = %d, want 2", rep.Errs())
	}
}

// A cancelled context fails queued requests with the context error.
func TestSolveBatchCancelledContext(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]antgpu.SolveRequest, 6)
	for i := range reqs {
		reqs[i] = antgpu.SolveRequest{Instance: in, Options: antgpu.SolveOptions{Iterations: 2}}
	}
	rep, err := antgpu.SolveBatch(ctx, reqs, antgpu.PoolOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range rep.Results {
		if !errors.Is(it.Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, it.Err)
		}
	}
}

// Profiled requests merge onto one timeline in request order.
func TestSolveBatchMergedTrace(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []antgpu.SolveRequest{
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU, Profile: true}},
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU,
			Profile: true, Params: antgpu.Params{Seed: 3}}},
	}
	rep, err := antgpu.SolveBatch(context.Background(), reqs, antgpu.PoolOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("no merged trace for profiled batch")
	}
	wantSecs := rep.Results[0].Result.Trace.Seconds() + rep.Results[1].Result.Trace.Seconds()
	if got := rep.Trace.Seconds(); got != wantSecs {
		t.Errorf("merged trace spans %.9f s, want %.9f", got, wantSecs)
	}
	events := rep.Trace.Events()
	if len(events) == 0 || events[0].Name != "req[0] att48" {
		t.Fatalf("merged trace does not start with the req[0] span: %v", events[0])
	}
}

// A Pool reused across batches accumulates cache hits: the second batch
// over the same instance should be all hits.
func TestPoolReuseSharesCacheAcrossBatches(t *testing.T) {
	in, err := antgpu.LoadBenchmark("att48")
	if err != nil {
		t.Fatal(err)
	}
	pool := antgpu.NewPool(antgpu.PoolOptions{Workers: 2})
	reqs := []antgpu.SolveRequest{
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU}},
		{Instance: in, Options: antgpu.SolveOptions{Iterations: 2, Backend: antgpu.BackendGPU, Params: antgpu.Params{Seed: 2}}},
	}
	first, err := pool.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses != 1 {
		t.Errorf("first batch: %d misses, want 1", first.CacheMisses)
	}
	second, err := pool.SolveBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 || second.CacheHits != 2 {
		t.Errorf("second batch: %d hits / %d misses, want 2 / 0", second.CacheHits, second.CacheMisses)
	}
	if hits, misses := pool.CacheStats(); hits != 3 || misses != 1 {
		t.Errorf("pool totals: %d hits / %d misses, want 3 / 1", hits, misses)
	}
}
